//! Explicit-lane SIMD kernels for the selection/residual hot path.
//!
//! Every Ok-Topk step burns most of its compute in a handful of O(n) per-element
//! passes: the threshold count/scan, the |value| fill feeding quickselect, the
//! survivor filter, and the residual accumulate. This module vectorizes those
//! passes with explicit lanes behind a runtime capability dispatch with a
//! scalar fallback. Two kinds of kernels, deliberately implemented differently:
//!
//! - **Compare/mask kernels** (counts, keep-scans) use hand-written AVX2/SSE2
//!   intrinsics on x86-64 — the compare → movemask → trailing_zeros survivor
//!   emission is a shape LLVM does not autovectorize, and it is worth >3× on
//!   the steady-state threshold scan.
//! - **Elementwise streaming kernels** (abs-fill, residual fuse, scale, axpy)
//!   use portable fixed-width `[f32; L]` cores that LLVM autovectorizes at the
//!   build's baseline ISA. Explicit `target_feature` wrappers were measured
//!   *slower* here (see the note on the x86 module): these loops are
//!   memory-bound, so wider registers add nothing.
//!
//! ## Selection and fallback rules
//!
//! The lane width is resolved **once** per process (first use) from, in order:
//!
//! 1. the `simd` cargo feature (on by default; compiled out → scalar always);
//! 2. the `OKTOPK_SIMD` environment variable:
//!    `off`/`0`/`scalar` force the scalar path, `4`/`w4`/`sse` force 4 lanes,
//!    `8`/`w8`/`avx2` request 8 lanes (granted only if the CPU has AVX2),
//!    `on`/`auto`/unset pick the widest supported width;
//! 3. runtime CPU detection: AVX2 → 8 lanes, x86-64 baseline SSE2 → 4 lanes,
//!    aarch64 NEON → 4 lanes (portable cores, NEON codegen), otherwise scalar.
//!
//! [`caps`] reports the resolved state; bench harnesses record it in their JSON
//! headers so perf trajectories across hosts stay interpretable.
//!
//! ## Bit-compatibility (reassociation tolerance policy)
//!
//! Every kernel here is **bit-identical to the scalar reference at every lane
//! width** — asserted by the `lane_parity` proptest suite. That is possible
//! because none of them reassociates a float reduction:
//!
//! - counts are integer reductions (order-free);
//! - `abs_fill`, `fused_scale_add`, `scale_inplace`, `axpy`/`axpy4` are
//!   elementwise (each output element sees the exact scalar operation sequence —
//!   `axpy4` adds its four terms in ascending-row order, matching a serial
//!   one-row-at-a-time loop);
//! - the keep-scan emits survivors in index order off a lane mask;
//! - `max_abs` is a max-reduction: `max` is associative and commutative, so any
//!   lane split yields the same result on the NaN-free inputs the pipeline
//!   carries (and `f32::max` drops NaN in either operand, so even a stray NaN
//!   cannot make widths disagree).
//!
//! Kernels that *would* need to reassociate (e.g. a lane-parallel dot product)
//! are deliberately not provided; the dnn matmul family instead uses
//! register-tiled formulations that keep each output element's accumulation
//! order serial (see `dnn::ops`). If a future kernel must reassociate, its
//! parity test drops from bitwise equality to a documented relative-error
//! tolerance — that is the only sanctioned relaxation.
//!
//! The explicit `*_with_lanes` variants take the width as a parameter (for
//! tests and benches, which must not depend on the process-global resolution);
//! the plain names auto-dispatch on [`caps`]. Forced widths the CPU cannot
//! accelerate still produce correct results through the portable cores.

use std::sync::OnceLock;

/// Lane width for the kernels in this module.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lanes {
    /// Scalar reference path (1 element per step).
    S1,
    /// 4-wide lanes (SSE2 on x86-64, NEON-friendly portable core elsewhere).
    W4,
    /// 8-wide lanes (AVX2 on x86-64, portable core elsewhere).
    W8,
}

impl Lanes {
    /// Number of f32 elements processed per lane step.
    pub fn width(self) -> usize {
        match self {
            Lanes::S1 => 1,
            Lanes::W4 => 4,
            Lanes::W8 => 8,
        }
    }

    /// All widths, for parity sweeps.
    pub const ALL: [Lanes; 3] = [Lanes::S1, Lanes::W4, Lanes::W8];
}

/// Resolved SIMD capability of this process (see module docs for the rules).
#[derive(Clone, Debug)]
pub struct SimdCaps {
    /// The lane width the auto-dispatching kernels use.
    pub lanes: Lanes,
    /// Human-readable ISA the width maps to (`"avx2"`, `"sse2"`, `"neon"`,
    /// `"portable"`, `"scalar"`).
    pub isa: &'static str,
    /// Raw `OKTOPK_SIMD` value at first use (`None` if unset).
    pub env: Option<String>,
    /// Whether the `simd` cargo feature was compiled in.
    pub compiled: bool,
    /// True when the scalar path was *forced* (feature off or `OKTOPK_SIMD=off`)
    /// rather than the host simply lacking vector units.
    pub forced_scalar: bool,
}

static CAPS: OnceLock<SimdCaps> = OnceLock::new();

fn widest_supported() -> (Lanes, &'static str) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return (Lanes::W8, "avx2");
        }
        return (Lanes::W4, "sse2"); // x86-64 baseline
    }
    #[cfg(target_arch = "aarch64")]
    {
        return (Lanes::W4, "neon"); // NEON is baseline on aarch64
    }
    #[allow(unreachable_code)]
    (Lanes::S1, "scalar")
}

fn detect() -> SimdCaps {
    let env = std::env::var("OKTOPK_SIMD").ok();
    let compiled = cfg!(feature = "simd");
    if !compiled {
        return SimdCaps { lanes: Lanes::S1, isa: "scalar", env, compiled, forced_scalar: true };
    }
    let (best, best_isa) = widest_supported();
    let choice = env.as_deref().map(|s| s.trim().to_ascii_lowercase());
    match choice.as_deref() {
        Some("off") | Some("0") | Some("scalar") => {
            SimdCaps { lanes: Lanes::S1, isa: "scalar", env, compiled, forced_scalar: true }
        }
        Some("4") | Some("w4") | Some("sse") => {
            let lanes = if best.width() >= 4 { Lanes::W4 } else { best };
            let isa = if lanes == Lanes::W4 {
                if best_isa == "avx2" {
                    "sse2"
                } else {
                    best_isa
                }
            } else {
                best_isa
            };
            SimdCaps { lanes, isa, env, compiled, forced_scalar: false }
        }
        Some("8") | Some("w8") | Some("avx2") => {
            if best == Lanes::W8 {
                SimdCaps { lanes: Lanes::W8, isa: best_isa, env, compiled, forced_scalar: false }
            } else {
                eprintln!(
                    "sparse::simd: OKTOPK_SIMD requested 8 lanes but the host supports only \
                     {} ({}); using that instead",
                    best.width(),
                    best_isa
                );
                SimdCaps { lanes: best, isa: best_isa, env, compiled, forced_scalar: false }
            }
        }
        None | Some("on") | Some("auto") | Some("") => {
            SimdCaps { lanes: best, isa: best_isa, env, compiled, forced_scalar: false }
        }
        Some(other) => {
            eprintln!(
                "sparse::simd: ignoring invalid OKTOPK_SIMD={other:?} \
                 (want off|4|8|auto); auto-detecting"
            );
            SimdCaps { lanes: best, isa: best_isa, env, compiled, forced_scalar: false }
        }
    }
}

/// The process-wide resolved SIMD capability (first call snapshots
/// `OKTOPK_SIMD` and probes the CPU; later env mutations are ignored, matching
/// the `OKTOPK_THREADS` snapshot semantics in `okpar`).
pub fn caps() -> &'static SimdCaps {
    CAPS.get_or_init(detect)
}

/// The lane width the auto-dispatching kernels use.
pub fn lanes() -> Lanes {
    caps().lanes
}

// ---------------------------------------------------------------------------
// Portable fixed-width cores. `#[inline(always)]` so the x86 `target_feature`
// wrappers below inline them and codegen with the wider ISA enabled.
// ---------------------------------------------------------------------------

#[inline(always)]
fn count_abs_ge_core<const L: usize>(values: &[f32], th: f32) -> usize {
    let mut lane = [0usize; L];
    let mut it = values.chunks_exact(L);
    for chunk in &mut it {
        for j in 0..L {
            lane[j] += usize::from(chunk[j].abs() >= th);
        }
    }
    let mut total: usize = lane.iter().sum();
    for v in it.remainder() {
        total += usize::from(v.abs() >= th);
    }
    total
}

/// `select_ge` keep predicate: survivors have `|v| >= th` and are not exact
/// zeros (an explicit zero carries no information in a sparse gradient).
#[inline(always)]
fn keep(v: f32, th: f32) -> bool {
    v.abs() >= th && v != 0.0
}

#[inline(always)]
fn count_keep_core<const L: usize>(values: &[f32], th: f32) -> usize {
    let mut lane = [0usize; L];
    let mut it = values.chunks_exact(L);
    for chunk in &mut it {
        for j in 0..L {
            lane[j] += usize::from(keep(chunk[j], th));
        }
    }
    let mut total: usize = lane.iter().sum();
    for &v in it.remainder() {
        total += usize::from(keep(v, th));
    }
    total
}

/// Bitmask of keep-lanes for one L-block (bit j = block[j] survives).
#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
#[inline(always)]
fn keep_mask_core<const L: usize>(block: &[f32], th: f32) -> u32 {
    let mut mask = 0u32;
    for j in 0..L {
        mask |= u32::from(keep(block[j], th)) << j;
    }
    mask
}

#[inline(always)]
fn abs_fill_core<const L: usize>(dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    let mut d = dst.chunks_exact_mut(L);
    let mut s = src.chunks_exact(L);
    for (dc, sc) in (&mut d).zip(&mut s) {
        for j in 0..L {
            dc[j] = sc[j].abs();
        }
    }
    for (dv, sv) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dv = sv.abs();
    }
}

#[inline(always)]
fn fused_scale_add_core<const L: usize>(acc: &mut [f32], e: &[f32], g: &[f32], s: f32) {
    debug_assert_eq!(acc.len(), e.len());
    debug_assert_eq!(acc.len(), g.len());
    let mut a = acc.chunks_exact_mut(L);
    let mut ei = e.chunks_exact(L);
    let mut gi = g.chunks_exact(L);
    for ((ac, ec), gc) in (&mut a).zip(&mut ei).zip(&mut gi) {
        for j in 0..L {
            ac[j] = ec[j] + s * gc[j];
        }
    }
    for ((av, &ev), &gv) in a.into_remainder().iter_mut().zip(ei.remainder()).zip(gi.remainder()) {
        *av = ev + s * gv;
    }
}

#[inline(always)]
fn scale_inplace_core<const L: usize>(values: &mut [f32], c: f32) {
    let mut it = values.chunks_exact_mut(L);
    for chunk in &mut it {
        for v in chunk {
            *v *= c;
        }
    }
    for v in it.into_remainder() {
        *v *= c;
    }
}

#[inline(always)]
fn max_abs_core<const L: usize>(values: &[f32]) -> f32 {
    let mut lane = [0.0f32; L];
    let mut it = values.chunks_exact(L);
    for chunk in &mut it {
        for j in 0..L {
            lane[j] = lane[j].max(chunk[j].abs());
        }
    }
    let mut m = 0.0f32;
    for &l in &lane {
        m = m.max(l);
    }
    for &v in it.remainder() {
        m = m.max(v.abs());
    }
    m
}

#[inline(always)]
fn axpy_core<const L: usize>(out: &mut [f32], row: &[f32], a: f32) {
    debug_assert_eq!(out.len(), row.len());
    let mut o = out.chunks_exact_mut(L);
    let mut r = row.chunks_exact(L);
    for (oc, rc) in (&mut o).zip(&mut r) {
        for j in 0..L {
            oc[j] += a * rc[j];
        }
    }
    for (ov, rv) in o.into_remainder().iter_mut().zip(r.remainder()) {
        *ov += a * rv;
    }
}

/// `out[j] += a0·r0[j] + a1·r1[j] + a2·r2[j] + a3·r3[j]`, adding the four terms
/// in ascending-row order per element — bit-identical to four sequential
/// [`axpy`] calls, but with one load/store of `out` per element instead of four.
#[inline(always)]
fn axpy4_core<const L: usize>(
    out: &mut [f32],
    r0: &[f32],
    r1: &[f32],
    r2: &[f32],
    r3: &[f32],
    a: [f32; 4],
) {
    let n = out.len();
    // Pre-slice to `n` so the chunk iterators stay in lock-step and LLVM can
    // elide the per-element bounds checks.
    let (r0, r1, r2, r3) = (&r0[..n], &r1[..n], &r2[..n], &r3[..n]);
    let mut o = out.chunks_exact_mut(L);
    let mut i0 = r0.chunks_exact(L);
    let mut i1 = r1.chunks_exact(L);
    let mut i2 = r2.chunks_exact(L);
    let mut i3 = r3.chunks_exact(L);
    for ((((oc, c0), c1), c2), c3) in (&mut o).zip(&mut i0).zip(&mut i1).zip(&mut i2).zip(&mut i3) {
        for j in 0..L {
            let mut v = oc[j];
            v += a[0] * c0[j];
            v += a[1] * c1[j];
            v += a[2] * c2[j];
            v += a[3] * c3[j];
            oc[j] = v;
        }
    }
    let tail = o.into_remainder();
    let base = n - tail.len();
    for (j, ov) in tail.iter_mut().enumerate() {
        let i = base + j;
        let mut v = *ov;
        v += a[0] * r0[i];
        v += a[1] * r1[i];
        v += a[2] * r2[i];
        v += a[3] * r3[i];
        *ov = v;
    }
}

// ---------------------------------------------------------------------------
// x86-64 intrinsic kernels — count/mask only. These use hand-written AVX2/SSE2
// compares because LLVM does not reliably turn the portable mask fold into
// movemask. The elementwise streaming kernels deliberately have NO intrinsic
// variants: their portable cores already autovectorize at the build's baseline
// ISA, and `#[target_feature(enable = "avx2")]` wrappers around them measured
// consistently *slower* than baseline codegen on memory-bound sizes (the
// hotpath bench's residual_fuse row read 0.79–0.92x with a wrapper) — wider
// registers buy nothing once the stream is bandwidth-bound, and the
// non-inlinable target_feature boundary costs scheduling freedom.
// ---------------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use core::arch::x86_64::*;

    const ABS_MASK: u32 = 0x7fff_ffff;

    #[inline]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01>(s));
        _mm_cvtsi128_si32(s)
    }

    /// AVX2 threshold count: per-lane i32 counters via compare-and-subtract
    /// (a true compare lane is −1), 16 elements per iteration.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_abs_ge_w8(values: &[f32], th: f32) -> usize {
        let absmask = _mm256_set1_ps(f32::from_bits(ABS_MASK));
        let t = _mm256_set1_ps(th);
        let mut c0 = _mm256_setzero_si256();
        let mut c1 = _mm256_setzero_si256();
        let mut it = values.chunks_exact(16);
        for chunk in &mut it {
            let a = _mm256_and_ps(_mm256_loadu_ps(chunk.as_ptr()), absmask);
            let b = _mm256_and_ps(_mm256_loadu_ps(chunk.as_ptr().add(8)), absmask);
            c0 = _mm256_sub_epi32(c0, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(a, t)));
            c1 = _mm256_sub_epi32(c1, _mm256_castps_si256(_mm256_cmp_ps::<_CMP_GE_OQ>(b, t)));
        }
        let mut total = hsum_epi32(_mm256_add_epi32(c0, c1)) as usize;
        for v in it.remainder() {
            total += usize::from(v.abs() >= th);
        }
        total
    }

    /// SSE2 threshold count, 8 elements per iteration.
    #[target_feature(enable = "sse2")]
    pub unsafe fn count_abs_ge_w4(values: &[f32], th: f32) -> usize {
        let absmask = _mm_set1_ps(f32::from_bits(ABS_MASK));
        let t = _mm_set1_ps(th);
        let mut c0 = _mm_setzero_si128();
        let mut c1 = _mm_setzero_si128();
        let mut it = values.chunks_exact(8);
        for chunk in &mut it {
            let a = _mm_and_ps(_mm_loadu_ps(chunk.as_ptr()), absmask);
            let b = _mm_and_ps(_mm_loadu_ps(chunk.as_ptr().add(4)), absmask);
            c0 = _mm_sub_epi32(c0, _mm_castps_si128(_mm_cmpge_ps(a, t)));
            c1 = _mm_sub_epi32(c1, _mm_castps_si128(_mm_cmpge_ps(b, t)));
        }
        let s = _mm_add_epi32(c0, c1);
        let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01>(s));
        let mut total = _mm_cvtsi128_si32(s) as usize;
        for v in it.remainder() {
            total += usize::from(v.abs() >= th);
        }
        total
    }

    /// AVX2 keep-count (`|v| >= th && v != 0`).
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_keep_w8(values: &[f32], th: f32) -> usize {
        let absmask = _mm256_set1_ps(f32::from_bits(ABS_MASK));
        let t = _mm256_set1_ps(th);
        let zero = _mm256_setzero_ps();
        let mut c = _mm256_setzero_si256();
        let mut it = values.chunks_exact(8);
        for chunk in &mut it {
            let v = _mm256_loadu_ps(chunk.as_ptr());
            let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_and_ps(v, absmask), t);
            // NEQ_UQ matches scalar `v != 0.0` (true for NaN lanes, which the
            // `ge` term rejects anyway).
            let nz = _mm256_cmp_ps::<_CMP_NEQ_UQ>(v, zero);
            c = _mm256_sub_epi32(c, _mm256_castps_si256(_mm256_and_ps(ge, nz)));
        }
        let mut total = hsum_epi32(c) as usize;
        for &v in it.remainder() {
            total += usize::from(super::keep(v, th));
        }
        total
    }

    /// SSE2 keep-count.
    #[target_feature(enable = "sse2")]
    pub unsafe fn count_keep_w4(values: &[f32], th: f32) -> usize {
        let absmask = _mm_set1_ps(f32::from_bits(ABS_MASK));
        let t = _mm_set1_ps(th);
        let zero = _mm_setzero_ps();
        let mut c = _mm_setzero_si128();
        let mut it = values.chunks_exact(4);
        for chunk in &mut it {
            let v = _mm_loadu_ps(chunk.as_ptr());
            let ge = _mm_cmpge_ps(_mm_and_ps(v, absmask), t);
            let nz = _mm_cmpneq_ps(v, zero);
            c = _mm_sub_epi32(c, _mm_castps_si128(_mm_and_ps(ge, nz)));
        }
        let s = _mm_add_epi32(c, _mm_unpackhi_epi64(c, c));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01>(s));
        let mut total = _mm_cvtsi128_si32(s) as usize;
        for &v in it.remainder() {
            total += usize::from(super::keep(v, th));
        }
        total
    }

    /// Keep-lane bitmask for one 8-block (bit j = lane j survives).
    #[target_feature(enable = "avx2")]
    pub unsafe fn keep_mask_w8(block: *const f32, th: f32) -> u32 {
        let absmask = _mm256_set1_ps(f32::from_bits(ABS_MASK));
        let v = _mm256_loadu_ps(block);
        let ge = _mm256_cmp_ps::<_CMP_GE_OQ>(_mm256_and_ps(v, absmask), _mm256_set1_ps(th));
        let nz = _mm256_cmp_ps::<_CMP_NEQ_UQ>(v, _mm256_setzero_ps());
        _mm256_movemask_ps(_mm256_and_ps(ge, nz)) as u32
    }

    /// Keep-lane bitmask for one 4-block.
    #[target_feature(enable = "sse2")]
    pub unsafe fn keep_mask_w4(block: *const f32, th: f32) -> u32 {
        let absmask = _mm_set1_ps(f32::from_bits(ABS_MASK));
        let v = _mm_loadu_ps(block);
        let ge = _mm_cmpge_ps(_mm_and_ps(v, absmask), _mm_set1_ps(th));
        let nz = _mm_cmpneq_ps(v, _mm_setzero_ps());
        _mm_movemask_ps(_mm_and_ps(ge, nz)) as u32
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[inline]
fn have_avx2() -> bool {
    // `is_x86_feature_detected!` caches after the first probe.
    std::arch::is_x86_feature_detected!("avx2")
}

// ---------------------------------------------------------------------------
// Public dispatchers. The `*_with_lanes` variants are the parity-test surface:
// a forced width the CPU cannot accelerate still computes through the portable
// core at that width (same math, same result).
// ---------------------------------------------------------------------------

/// Count entries with `|v| >= th` (the steady-state threshold scan).
pub fn count_abs_ge(values: &[f32], th: f32) -> usize {
    count_abs_ge_with_lanes(values, th, lanes())
}

/// [`count_abs_ge`] at an explicit lane width.
pub fn count_abs_ge_with_lanes(values: &[f32], th: f32, lanes: Lanes) -> usize {
    match lanes {
        Lanes::S1 => values.iter().filter(|v| v.abs() >= th).count(),
        Lanes::W4 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // Safety: SSE2 is part of the x86-64 baseline.
            return unsafe { x86::count_abs_ge_w4(values, th) };
            #[allow(unreachable_code)]
            count_abs_ge_core::<4>(values, th)
        }
        Lanes::W8 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if have_avx2() {
                // Safety: AVX2 presence just checked.
                return unsafe { x86::count_abs_ge_w8(values, th) };
            }
            count_abs_ge_core::<8>(values, th)
        }
    }
}

/// Count `select_ge` survivors (`|v| >= th` and `v != 0`).
pub fn count_keep(values: &[f32], th: f32) -> usize {
    count_keep_with_lanes(values, th, lanes())
}

/// [`count_keep`] at an explicit lane width.
pub fn count_keep_with_lanes(values: &[f32], th: f32, lanes: Lanes) -> usize {
    match lanes {
        Lanes::S1 => values.iter().filter(|&&v| keep(v, th)).count(),
        Lanes::W4 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            // Safety: SSE2 is part of the x86-64 baseline.
            return unsafe { x86::count_keep_w4(values, th) };
            #[allow(unreachable_code)]
            count_keep_core::<4>(values, th)
        }
        Lanes::W8 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if have_avx2() {
                // Safety: AVX2 presence just checked.
                return unsafe { x86::count_keep_w8(values, th) };
            }
            count_keep_core::<8>(values, th)
        }
    }
}

/// Shared block walk of the keep-scan: computes a lane mask per block, skips
/// survivor-free blocks wholesale (the common case at steady-state sparsity),
/// and emits survivors in index order.
#[inline(always)]
fn scan_keep_blocks<F: FnMut(u32, f32)>(dense: &[f32], th: f32, base: u32, width: usize, emit: F) {
    let mut emit = emit;
    debug_assert!(width == 4 || width == 8);
    let main = dense.len() - dense.len() % width;
    let mut off = 0usize;
    while off < main {
        let block = &dense[off..off + width];
        #[allow(unused_mut)]
        let mut mask;
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            // Safety: the block has `width` readable elements; SSE2 is
            // baseline and the W8 path is only reached when AVX2 is present
            // (checked by the caller choosing the width).
            mask = if width == 8 {
                unsafe { x86::keep_mask_w8(block.as_ptr(), th) }
            } else {
                unsafe { x86::keep_mask_w4(block.as_ptr(), th) }
            };
        }
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        {
            mask = if width == 8 {
                keep_mask_core::<8>(block, th)
            } else {
                keep_mask_core::<4>(block, th)
            };
        }
        while mask != 0 {
            let j = mask.trailing_zeros() as usize;
            emit(base + (off + j) as u32, block[j]);
            mask &= mask - 1;
        }
        off += width;
    }
    for (j, &v) in dense[main..].iter().enumerate() {
        if keep(v, th) {
            emit(base + (main + j) as u32, v);
        }
    }
}

/// Append `select_ge` survivors of `dense` (indexes offset by `base`) to the
/// output vectors, in index order — the serial selection scan.
pub fn scan_keep_append(dense: &[f32], th: f32, base: u32, idx: &mut Vec<u32>, val: &mut Vec<f32>) {
    scan_keep_append_with_lanes(dense, th, base, idx, val, lanes())
}

/// [`scan_keep_append`] at an explicit lane width.
pub fn scan_keep_append_with_lanes(
    dense: &[f32],
    th: f32,
    base: u32,
    idx: &mut Vec<u32>,
    val: &mut Vec<f32>,
    lanes: Lanes,
) {
    let width = effective_mask_width(lanes);
    if width == 1 {
        for (i, &v) in dense.iter().enumerate() {
            if keep(v, th) {
                idx.push(base + i as u32);
                val.push(v);
            }
        }
        return;
    }
    scan_keep_blocks(dense, th, base, width, |i, v| {
        idx.push(i);
        val.push(v);
    });
}

/// Write `select_ge` survivors into pre-sized windows (the parallel fill pass);
/// returns the number written. The windows must hold exactly the survivor
/// count ([`count_keep`] with the same threshold).
pub fn scan_keep_write(
    dense: &[f32],
    th: f32,
    base: u32,
    idx: &mut [u32],
    val: &mut [f32],
) -> usize {
    scan_keep_write_with_lanes(dense, th, base, idx, val, lanes())
}

/// [`scan_keep_write`] at an explicit lane width.
pub fn scan_keep_write_with_lanes(
    dense: &[f32],
    th: f32,
    base: u32,
    idx: &mut [u32],
    val: &mut [f32],
    lanes: Lanes,
) -> usize {
    let mut w = 0usize;
    let width = effective_mask_width(lanes);
    if width == 1 {
        for (off, &v) in dense.iter().enumerate() {
            if keep(v, th) {
                idx[w] = base + off as u32;
                val[w] = v;
                w += 1;
            }
        }
        return w;
    }
    scan_keep_blocks(dense, th, base, width, |i, v| {
        idx[w] = i;
        val[w] = v;
        w += 1;
    });
    w
}

/// The mask-kernel width a requested lane setting resolves to: W8 drops to 4
/// on x86-64 without AVX2 (the portable mask core is slower than SSE2 there),
/// and stays as requested elsewhere (portable cores).
fn effective_mask_width(lanes: Lanes) -> usize {
    match lanes {
        Lanes::S1 => 1,
        Lanes::W4 => 4,
        Lanes::W8 => {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            if !have_avx2() {
                return 4;
            }
            8
        }
    }
}

/// `dst[i] = |src[i]|` (the quickselect magnitude fill). Slices must be equal
/// length.
pub fn abs_fill(dst: &mut [f32], src: &[f32]) {
    abs_fill_with_lanes(dst, src, lanes())
}

/// [`abs_fill`] at an explicit lane width.
pub fn abs_fill_with_lanes(dst: &mut [f32], src: &[f32], lanes: Lanes) {
    match lanes {
        Lanes::S1 => {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s.abs();
            }
        }
        Lanes::W4 => abs_fill_core::<4>(dst, src),
        Lanes::W8 => abs_fill_core::<8>(dst, src),
    }
}

/// `acc[i] = e[i] + s·g[i]` — the fused residual-accumulate of Algorithm 2
/// line 4. Slices must be equal length.
pub fn fused_scale_add(acc: &mut [f32], e: &[f32], g: &[f32], s: f32) {
    fused_scale_add_with_lanes(acc, e, g, s, lanes())
}

/// [`fused_scale_add`] at an explicit lane width.
pub fn fused_scale_add_with_lanes(acc: &mut [f32], e: &[f32], g: &[f32], s: f32, lanes: Lanes) {
    match lanes {
        Lanes::S1 => {
            for ((a, &ev), &gv) in acc.iter_mut().zip(e).zip(g) {
                *a = ev + s * gv;
            }
        }
        Lanes::W4 => fused_scale_add_core::<4>(acc, e, g, s),
        Lanes::W8 => fused_scale_add_core::<8>(acc, e, g, s),
    }
}

/// `v[i] *= c` in place.
pub fn scale_inplace(values: &mut [f32], c: f32) {
    scale_inplace_with_lanes(values, c, lanes())
}

/// [`scale_inplace`] at an explicit lane width.
pub fn scale_inplace_with_lanes(values: &mut [f32], c: f32, lanes: Lanes) {
    match lanes {
        Lanes::S1 => {
            for v in values {
                *v *= c;
            }
        }
        Lanes::W4 => scale_inplace_core::<4>(values, c),
        Lanes::W8 => scale_inplace_core::<8>(values, c),
    }
}

/// `max_i |v[i]|` (0 for an empty slice) — the quantization scale pass.
pub fn max_abs(values: &[f32]) -> f32 {
    max_abs_with_lanes(values, lanes())
}

/// [`max_abs`] at an explicit lane width.
pub fn max_abs_with_lanes(values: &[f32], lanes: Lanes) -> f32 {
    match lanes {
        Lanes::S1 => values.iter().fold(0.0f32, |a, &v| a.max(v.abs())),
        Lanes::W4 => max_abs_core::<4>(values),
        Lanes::W8 => max_abs_core::<8>(values),
    }
}

/// `out[j] += a·row[j]` — the elementwise row update of the ikj matmul.
/// `row` must be at least as long as `out`.
pub fn axpy(out: &mut [f32], row: &[f32], a: f32) {
    axpy_with_lanes(out, row, a, lanes())
}

/// [`axpy`] at an explicit lane width.
pub fn axpy_with_lanes(out: &mut [f32], row: &[f32], a: f32, lanes: Lanes) {
    match lanes {
        Lanes::S1 => {
            for (o, &r) in out.iter_mut().zip(row) {
                *o += a * r;
            }
        }
        Lanes::W4 => axpy_core::<4>(out, row, a),
        Lanes::W8 => axpy_core::<8>(out, row, a),
    }
}

/// Four-row [`axpy`] with a single load/store of `out` per element; terms are
/// added in ascending-row order, so the result is bit-identical to four
/// sequential `axpy` calls. Rows must be at least as long as `out`.
pub fn axpy4(out: &mut [f32], rows: [&[f32]; 4], a: [f32; 4]) {
    axpy4_with_lanes(out, rows, a, lanes())
}

/// [`axpy4`] at an explicit lane width.
pub fn axpy4_with_lanes(out: &mut [f32], rows: [&[f32]; 4], a: [f32; 4], lanes: Lanes) {
    let [r0, r1, r2, r3] = rows;
    match lanes {
        Lanes::S1 => {
            for (i, o) in out.iter_mut().enumerate() {
                let mut v = *o;
                v += a[0] * r0[i];
                v += a[1] * r1[i];
                v += a[2] * r2[i];
                v += a[3] * r3[i];
                *o = v;
            }
        }
        Lanes::W4 => axpy4_core::<4>(out, r0, r1, r2, r3, a),
        Lanes::W8 => axpy4_core::<8>(out, r0, r1, r2, r3, a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed);
                let v = ((h >> 33) % 2001) as f32 / 1000.0 - 1.0;
                if v.abs() < 0.3 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn caps_resolve_and_are_stable() {
        let c1 = caps();
        let c2 = caps();
        assert_eq!(c1.lanes, c2.lanes);
        assert!(c1.lanes.width() >= 1);
        if !c1.compiled {
            assert_eq!(c1.lanes, Lanes::S1);
        }
    }

    #[test]
    fn counts_match_scalar_at_all_widths() {
        for n in [0usize, 1, 3, 4, 7, 8, 15, 16, 17, 100, 1000, 4097] {
            let v = mixed(n, 42);
            for th in [0.0f32, 0.3, 0.5, 0.95, f32::INFINITY] {
                let want_ge = v.iter().filter(|x| x.abs() >= th).count();
                let want_keep = v.iter().filter(|&&x| keep(x, th)).count();
                for l in Lanes::ALL {
                    assert_eq!(count_abs_ge_with_lanes(&v, th, l), want_ge, "n={n} th={th} {l:?}");
                    assert_eq!(count_keep_with_lanes(&v, th, l), want_keep, "n={n} th={th} {l:?}");
                }
            }
        }
    }

    #[test]
    fn scan_append_and_write_match_scalar() {
        for n in [0usize, 1, 5, 8, 9, 63, 64, 65, 1000] {
            let v = mixed(n, 7);
            let th = 0.5f32;
            let mut want_i = Vec::new();
            let mut want_v = Vec::new();
            scan_keep_append_with_lanes(&v, th, 10, &mut want_i, &mut want_v, Lanes::S1);
            for l in [Lanes::W4, Lanes::W8] {
                let (mut gi, mut gv) = (Vec::new(), Vec::new());
                scan_keep_append_with_lanes(&v, th, 10, &mut gi, &mut gv, l);
                assert_eq!(gi, want_i, "append n={n} {l:?}");
                assert_eq!(gv, want_v, "append n={n} {l:?}");
                let mut wi = vec![0u32; want_i.len()];
                let mut wv = vec![0f32; want_v.len()];
                let written = scan_keep_write_with_lanes(&v, th, 10, &mut wi, &mut wv, l);
                assert_eq!(written, want_i.len(), "write n={n} {l:?}");
                assert_eq!(wi, want_i, "write n={n} {l:?}");
                assert_eq!(wv, want_v, "write n={n} {l:?}");
            }
        }
    }

    #[test]
    fn elementwise_kernels_bit_identical() {
        for n in [0usize, 1, 7, 8, 9, 100, 1001] {
            let src = mixed(n, 3);
            let g = mixed(n, 5);
            for l in Lanes::ALL {
                let mut d_want = vec![0f32; n];
                abs_fill_with_lanes(&mut d_want, &src, Lanes::S1);
                let mut d = vec![0f32; n];
                abs_fill_with_lanes(&mut d, &src, l);
                assert_eq!(
                    d.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    d_want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "abs_fill n={n} {l:?}"
                );

                let mut a_want = vec![0f32; n];
                fused_scale_add_with_lanes(&mut a_want, &src, &g, 0.37, Lanes::S1);
                let mut a = vec![0f32; n];
                fused_scale_add_with_lanes(&mut a, &src, &g, 0.37, l);
                assert_eq!(a, a_want, "fused_scale_add n={n} {l:?}");

                let mut s_want = src.clone();
                scale_inplace_with_lanes(&mut s_want, -1.5, Lanes::S1);
                let mut s = src.clone();
                scale_inplace_with_lanes(&mut s, -1.5, l);
                assert_eq!(s, s_want, "scale n={n} {l:?}");

                assert_eq!(
                    max_abs_with_lanes(&src, l).to_bits(),
                    max_abs_with_lanes(&src, Lanes::S1).to_bits(),
                    "max_abs n={n} {l:?}"
                );
            }
        }
    }

    #[test]
    fn axpy_kernels_bit_identical() {
        let n = 133;
        let rows: Vec<Vec<f32>> = (0..4).map(|s| mixed(n, 20 + s)).collect();
        let a = [0.5f32, -1.25, 0.0, 2.0];
        let init = mixed(n, 9);
        // axpy4 == four sequential axpy calls == scalar loop, at every width.
        let mut want = init.clone();
        for (r, &c) in rows.iter().zip(&a) {
            axpy_with_lanes(&mut want, r, c, Lanes::S1);
        }
        for l in Lanes::ALL {
            let mut got = init.clone();
            axpy4_with_lanes(&mut got, [&rows[0], &rows[1], &rows[2], &rows[3]], a, l);
            assert_eq!(got, want, "axpy4 {l:?}");

            let mut got1 = init.clone();
            for (r, &c) in rows.iter().zip(&a) {
                axpy_with_lanes(&mut got1, r, c, l);
            }
            assert_eq!(got1, want, "axpy chain {l:?}");
        }
    }

    #[test]
    fn nan_lanes_do_not_diverge() {
        // NaN never satisfies `|v| >= th`; keep-scan and counts must agree at
        // every width even with NaN payloads present.
        let mut v = mixed(64, 11);
        v[3] = f32::NAN;
        v[40] = -f32::NAN;
        for th in [0.0f32, 0.5] {
            let want = count_abs_ge_with_lanes(&v, th, Lanes::S1);
            let want_keep = count_keep_with_lanes(&v, th, Lanes::S1);
            for l in [Lanes::W4, Lanes::W8] {
                assert_eq!(count_abs_ge_with_lanes(&v, th, l), want);
                assert_eq!(count_keep_with_lanes(&v, th, l), want_keep);
            }
        }
    }
}
