//! Numeric utilities: moments, error function, inverse normal CDF, histograms.
//!
//! Implemented from scratch (no external stats crates): the Gaussiank baseline needs
//! the normal percent-point function (§2, \[41\]), and the Fig. 4 harness needs value
//! histograms of real gradients.

/// Mean and (population) standard deviation of a slice, in one pass.
pub fn mean_std(values: &[f32]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for &v in values {
        let v = v as f64;
        sum += v;
        sum_sq += v * v;
    }
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);
    (mean, var.sqrt())
}

/// ℓ2 norm of a dense slice (f64 accumulation).
pub fn l2_norm(values: &[f32]) -> f64 {
    values.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
}

/// Fraction of entries with `|v| >= threshold`.
pub fn fraction_abs_ge(values: &[f32], threshold: f32) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| v.abs() >= threshold).count() as f64 / values.len() as f64
}

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error ≈ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (percent-point function), Acklam's algorithm;
/// relative error below 1.2e-9 across (0, 1). No refinement step is applied: the
/// only erf available here is the 1e-7-accurate A&S polynomial, and refining
/// against it would *worsen* Acklam's raw accuracy.
pub fn normal_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "ppf domain is (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A fixed-range, fixed-width histogram over f32 samples (used by the Fig. 4 harness
/// to print gradient value distributions).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0);
        Self { lo, hi, counts: vec![0; bins], below: 0, above: 0 }
    }

    /// Add one sample (out-of-range samples are counted as outliers).
    pub fn add(&mut self, v: f64) {
        if v < self.lo {
            self.below += 1;
        } else if v >= self.hi {
            self.above += 1;
        } else {
            let bins = self.counts.len();
            let bin = ((v - self.lo) / (self.hi - self.lo) * bins as f64) as usize;
            self.counts[bin.min(bins - 1)] += 1;
        }
    }

    /// Add every sample of a slice.
    pub fn add_all(&mut self, values: &[f32]) {
        for &v in values {
            self.add(v as f64);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples that fell (below, above) the histogram range.
    pub fn outliers(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total samples added, including outliers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.below + self.above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((s - (1.25f64).sqrt()).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 2e-7);
    }

    #[test]
    fn ppf_known_quantiles() {
        assert!(normal_ppf(0.5).abs() < 1e-7);
        assert!((normal_ppf(0.975) - 1.959963985).abs() < 1e-6);
        assert!((normal_ppf(0.025) + 1.959963985).abs() < 1e-6);
        assert!((normal_ppf(0.999) - 3.090232306).abs() < 1e-6);
        assert!((normal_ppf(1e-6) + 4.753424309).abs() < 1e-5);
    }

    #[test]
    fn ppf_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_ppf(p);
            // Bounded by the A&S erf polynomial's own ~1.5e-7 accuracy.
            assert!((normal_cdf(x) - p).abs() < 5e-7, "p={p}");
        }
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add_all(&[-0.5, 0.1, 0.3, 0.6, 0.99, 1.5]);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.total(), 6);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fraction_abs_ge_counts_magnitudes() {
        assert_eq!(fraction_abs_ge(&[0.5, -0.5, 0.1, 0.0], 0.5), 0.5);
        assert_eq!(fraction_abs_ge(&[], 0.5), 0.0);
    }
}
