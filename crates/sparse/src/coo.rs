//! Coordinate-format sparse gradients.
//!
//! The paper assumes COO storage throughout (§2): a k-sparse gradient is k `f32`
//! values plus k `u32` indexes, i.e. 2k wire elements. `CooGradient` maintains the
//! invariant that indexes are *strictly increasing* (sorted, unique), which makes
//! merge-sum (the reduction kernel of every sparse allreduce here) a linear sort-merge.

use simnet::WireSize;

/// A sparse gradient in coordinate format with sorted, unique indexes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CooGradient {
    indexes: Vec<u32>,
    values: Vec<f32>,
}

impl CooGradient {
    /// An empty sparse gradient.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from parallel arrays that are already sorted by strictly increasing index.
    ///
    /// # Panics
    /// In debug builds, panics if the invariant does not hold.
    pub fn from_sorted(indexes: Vec<u32>, values: Vec<f32>) -> Self {
        debug_assert_eq!(indexes.len(), values.len());
        debug_assert!(
            indexes.windows(2).all(|w| w[0] < w[1]),
            "indexes must be strictly increasing"
        );
        Self { indexes, values }
    }

    /// Build from unsorted parallel arrays; sorts and merges duplicate indexes by sum.
    pub fn from_unsorted(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indexes = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indexes.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indexes") += v;
            } else {
                indexes.push(i);
                values.push(v);
            }
        }
        Self { indexes, values }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the gradient holds no entries.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Sorted, unique coordinate indexes.
    pub fn indexes(&self) -> &[u32] {
        &self.indexes
    }

    /// Values, parallel to [`indexes`](Self::indexes).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indexes.iter().copied().zip(self.values.iter().copied())
    }

    /// Merge-sum with another sparse gradient (the sparse reduction kernel).
    /// Entries with equal indexes are added; the result keeps the sorted invariant.
    pub fn merge_sum(&self, other: &Self) -> Self {
        let mut indexes = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        self.merge_sum_to(other, &mut indexes, &mut values);
        Self { indexes, values }
    }

    /// The linear sort-merge core: append the merge of `self` and `other` to the
    /// given output buffers.
    fn merge_sum_to(&self, other: &Self, indexes: &mut Vec<u32>, values: &mut Vec<f32>) {
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.nnz() && b < other.nnz() {
            match self.indexes[a].cmp(&other.indexes[b]) {
                std::cmp::Ordering::Less => {
                    indexes.push(self.indexes[a]);
                    values.push(self.values[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    indexes.push(other.indexes[b]);
                    values.push(other.values[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    indexes.push(self.indexes[a]);
                    values.push(self.values[a] + other.values[b]);
                    a += 1;
                    b += 1;
                }
            }
        }
        indexes.extend_from_slice(&self.indexes[a..]);
        values.extend_from_slice(&self.values[a..]);
        indexes.extend_from_slice(&other.indexes[b..]);
        values.extend_from_slice(&other.values[b..]);
    }

    /// In-place merge-sum (avoids one allocation when accumulating many chunks).
    pub fn merge_sum_into(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.indexes = other.indexes.clone();
            self.values = other.values.clone();
            return;
        }
        *self = self.merge_sum(other);
    }

    /// Merge-sum `other` into `self`, using the caller's spare buffers as the
    /// output storage: after return `self` holds the merge and the spares hold
    /// `self`'s previous (cleared) storage, ready for the next merge.
    ///
    /// This is the allocation-free accumulation loop of split-and-reduce: ping-
    /// ponging one spare pair against the accumulator means a whole bucket of
    /// incoming shards reduces without touching the heap once the spare capacity
    /// covers the steady-state union size.
    pub fn merge_sum_swap(
        &mut self,
        other: &Self,
        spare_idx: &mut Vec<u32>,
        spare_val: &mut Vec<f32>,
    ) {
        if other.is_empty() {
            return;
        }
        spare_idx.clear();
        spare_val.clear();
        // A no-op once warm: capacity only ratchets up to the largest a+b seen.
        spare_idx.reserve(self.nnz() + other.nnz());
        spare_val.reserve(self.nnz() + other.nnz());
        self.merge_sum_to(other, spare_idx, spare_val);
        std::mem::swap(&mut self.indexes, spare_idx);
        std::mem::swap(&mut self.values, spare_val);
    }

    /// Merge-sum many sparse gradients at once.
    ///
    /// Folding with [`merge_sum_into`](Self::merge_sum_into) costs `O(P · |union|)`;
    /// for large worker counts this concat-and-sort formulation's
    /// `O(total · log total)` is far cheaper and is what the allgather-based
    /// reductions use.
    pub fn merge_sum_many(items: &[Self]) -> Self {
        let total: usize = items.iter().map(Self::nnz).sum();
        let mut pairs: Vec<(u32, f32)> = Vec::with_capacity(total);
        for g in items {
            pairs.extend(g.iter());
        }
        Self::from_unsorted(pairs)
    }

    /// Scatter into a dense vector of length `n`, adding values at their indexes.
    ///
    /// Deliberately scalar: the writes are random-access (gather/scatter needs
    /// AVX-512 to vectorize profitably) and the loop is O(k), not O(n) — it is
    /// not on the hot path the `simd` module covers.
    pub fn scatter_add(&self, dense: &mut [f32]) {
        for (i, v) in self.iter() {
            dense[i as usize] += v;
        }
    }

    /// Materialize a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f32> {
        let mut dense = vec![0.0; n];
        self.scatter_add(&mut dense);
        dense
    }

    /// Keep only entries with `|value| >= threshold`.
    pub fn filter_abs_ge(&self, threshold: f32) -> Self {
        let mut indexes = Vec::new();
        let mut values = Vec::new();
        for (i, v) in self.iter() {
            if v.abs() >= threshold {
                indexes.push(i);
                values.push(v);
            }
        }
        Self { indexes, values }
    }

    /// Split into per-region shards given region boundaries `b[0]=0 ≤ … ≤ b[P]=n`;
    /// shard `j` receives the entries with index in `[b[j], b[j+1])`.
    pub fn split_by_boundaries(&self, boundaries: &[u32]) -> Vec<Self> {
        assert!(boundaries.len() >= 2, "need at least one region");
        let regions = boundaries.len() - 1;
        let mut shards = Vec::with_capacity(regions);
        let mut start = 0usize;
        for j in 0..regions {
            let hi = boundaries[j + 1];
            let end = start + self.indexes[start..].partition_point(|&i| i < hi);
            shards.push(Self {
                indexes: self.indexes[start..end].to_vec(),
                values: self.values[start..end].to_vec(),
            });
            start = end;
        }
        shards
    }

    /// Concatenate shards whose index ranges are disjoint and ordered.
    pub fn concat_ordered(shards: &[Self]) -> Self {
        let total: usize = shards.iter().map(Self::nnz).sum();
        let mut indexes = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for s in shards {
            debug_assert!(
                indexes.last().is_none_or(|&last| s.indexes.first().is_none_or(|&f| last < f)),
                "shards must be ordered and disjoint"
            );
            indexes.extend_from_slice(&s.indexes);
            values.extend_from_slice(&s.values);
        }
        Self { indexes, values }
    }

    /// Scale all values by `c` (lane-vectorized; elementwise, so bit-identical
    /// to the scalar loop).
    pub fn scale(&mut self, c: f32) {
        crate::simd::scale_inplace(&mut self.values, c);
    }

    /// ℓ2 norm of the values.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>().sqrt()
    }

    /// Consume into parallel arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<f32>) {
        (self.indexes, self.values)
    }
}

impl WireSize for CooGradient {
    fn wire_elems(&self) -> u64 {
        // k values + k indexes, all 4-byte words.
        2 * self.nnz() as u64
    }
}

impl FromIterator<(u32, f32)> for CooGradient {
    fn from_iter<T: IntoIterator<Item = (u32, f32)>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coo(pairs: &[(u32, f32)]) -> CooGradient {
        CooGradient::from_unsorted(pairs.to_vec())
    }

    #[test]
    fn from_unsorted_sorts_and_merges() {
        let g = coo(&[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(g.indexes(), &[2, 5]);
        assert_eq!(g.values(), &[2.0, 4.0]);
    }

    #[test]
    fn merge_sum_matches_dense_addition() {
        let a = coo(&[(0, 1.0), (3, -2.0), (7, 0.5)]);
        let b = coo(&[(3, 2.0), (4, 1.0), (9, -1.0)]);
        let m = a.merge_sum(&b);
        let mut dense = a.to_dense(10);
        for (d, x) in dense.iter_mut().zip(b.to_dense(10)) {
            *d += x;
        }
        assert_eq!(m.to_dense(10), dense);
        assert_eq!(m.nnz(), 5); // index 3 merged
    }

    #[test]
    fn merge_sum_swap_matches_merge_sum() {
        let a0 = coo(&[(0, 1.0), (3, -2.0), (7, 0.5)]);
        let b = coo(&[(3, 2.0), (4, 1.0), (9, -1.0)]);
        let mut a = a0.clone();
        let (mut si, mut sv) = (Vec::new(), Vec::new());
        a.merge_sum_swap(&b, &mut si, &mut sv);
        assert_eq!(a, a0.merge_sum(&b));
        // The spares now hold a's old storage and must be reusable immediately.
        a.merge_sum_swap(&coo(&[(1, 1.0)]), &mut si, &mut sv);
        assert_eq!(a, a0.merge_sum(&b).merge_sum(&coo(&[(1, 1.0)])));
        // Merging an empty gradient is a no-op that leaves the spares alone.
        let before = a.clone();
        a.merge_sum_swap(&CooGradient::new(), &mut si, &mut sv);
        assert_eq!(a, before);
    }

    #[test]
    fn wire_size_is_2k() {
        let g = coo(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(g.wire_elems(), 6);
    }

    #[test]
    fn split_and_concat_roundtrip() {
        let g = coo(&[(0, 1.0), (4, 2.0), (5, 3.0), (9, 4.0)]);
        let shards = g.split_by_boundaries(&[0, 5, 8, 10]);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0].indexes(), &[0, 4]);
        assert_eq!(shards[1].indexes(), &[5]);
        assert_eq!(shards[2].indexes(), &[9]);
        assert_eq!(CooGradient::concat_ordered(&shards), g);
    }

    #[test]
    fn empty_region_split() {
        let g = coo(&[(9, 4.0)]);
        let shards = g.split_by_boundaries(&[0, 5, 10]);
        assert_eq!(shards[0].nnz(), 0);
        assert_eq!(shards[1].nnz(), 1);
    }

    #[test]
    fn filter_abs_ge_keeps_magnitudes() {
        let g = coo(&[(0, 0.1), (1, -0.5), (2, 0.3)]);
        let f = g.filter_abs_ge(0.3);
        assert_eq!(f.indexes(), &[1, 2]);
    }

    #[test]
    fn l2_norm_and_scale() {
        let mut g = coo(&[(0, 3.0), (1, 4.0)]);
        assert!((g.l2_norm() - 5.0).abs() < 1e-12);
        g.scale(2.0);
        assert!((g.l2_norm() - 10.0).abs() < 1e-12);
    }
}
