//! Quantized sparse gradients — the sparsification + quantization combination of
//! SparCML (\[36\], §2: "gradient quantization … is orthogonal to gradient
//! sparsification").
//!
//! A [`crate::CooGradient`]'s values are quantized to 16 or 8 bits with per-message
//! max-abs scaling; indexes stay at 32 bits (they address the full gradient space
//! and cannot be narrowed safely). On the wire (in the 4-byte-element accounting
//! used throughout this workspace) a k-sparse gradient then costs `1.5k` (Q16) or
//! `1.25k` (Q8) elements instead of COO's `2k`.

use crate::coo::CooGradient;
use simnet::WireSize;

/// Quantization width for sparse gradient values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// 16-bit linear quantization: ~3 decimal digits, `1.5k` wire elements.
    Q16,
    /// 8-bit linear quantization: coarse but tiny, `1.25k` wire elements.
    Q8,
}

impl QuantMode {
    /// Wire elements (4-byte words) for `k` quantized entries, including indexes.
    pub fn wire_elems_for(&self, k: usize) -> u64 {
        let value_words = match self {
            QuantMode::Q16 => k.div_ceil(2),
            QuantMode::Q8 => k.div_ceil(4),
        };
        (k + value_words) as u64 + 1 // +1 for the f32 scale
    }

    /// Worst-case absolute quantization error for values scaled into `[-m, m]`.
    pub fn max_abs_error(&self, max_abs: f32) -> f32 {
        match self {
            QuantMode::Q16 => max_abs / i16::MAX as f32,
            QuantMode::Q8 => max_abs / i8::MAX as f32,
        }
    }
}

/// A sparse gradient with linearly quantized values.
///
/// Values are stored as signed integers scaled by `scale = max|v| / IMAX`;
/// an all-zero (or empty) gradient uses `scale = 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedCoo {
    mode: QuantMode,
    scale: f32,
    indexes: Vec<u32>,
    q16: Vec<i16>,
    q8: Vec<i8>,
}

impl QuantizedCoo {
    /// Quantize a COO gradient.
    pub fn quantize(g: &CooGradient, mode: QuantMode) -> Self {
        let max_abs = crate::simd::max_abs(g.values());
        let (scale, q16, q8) = match mode {
            QuantMode::Q16 => {
                let scale = if max_abs > 0.0 { max_abs / i16::MAX as f32 } else { 0.0 };
                let q: Vec<i16> = g
                    .values()
                    .iter()
                    .map(|&v| if scale > 0.0 { (v / scale).round() as i16 } else { 0 })
                    .collect();
                (scale, q, Vec::new())
            }
            QuantMode::Q8 => {
                let scale = if max_abs > 0.0 { max_abs / i8::MAX as f32 } else { 0.0 };
                let q: Vec<i8> = g
                    .values()
                    .iter()
                    .map(|&v| {
                        if scale > 0.0 {
                            (v / scale).round().clamp(-127.0, 127.0) as i8
                        } else {
                            0
                        }
                    })
                    .collect();
                (scale, Vec::new(), q)
            }
        };
        Self { mode, scale, indexes: g.indexes().to_vec(), q16, q8 }
    }

    /// The quantization mode used.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indexes.len()
    }

    /// Reconstruct the (lossy) COO gradient.
    pub fn dequantize(&self) -> CooGradient {
        let values: Vec<f32> = match self.mode {
            QuantMode::Q16 => self.q16.iter().map(|&q| q as f32 * self.scale).collect(),
            QuantMode::Q8 => self.q8.iter().map(|&q| q as f32 * self.scale).collect(),
        };
        CooGradient::from_sorted(self.indexes.clone(), values)
    }
}

impl WireSize for QuantizedCoo {
    fn wire_elems(&self) -> u64 {
        self.mode.wire_elems_for(self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_coo(k: usize, seed: u64) -> CooGradient {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pairs: Vec<(u32, f32)> =
            (0..k).map(|i| (i as u32 * 7, rng.gen_range(-2.0f32..2.0))).collect();
        pairs.retain(|&(_, v)| v != 0.0);
        CooGradient::from_unsorted(pairs)
    }

    #[test]
    fn roundtrip_error_within_bound() {
        let g = random_coo(500, 3);
        for mode in [QuantMode::Q16, QuantMode::Q8] {
            let q = QuantizedCoo::quantize(&g, mode);
            let back = q.dequantize();
            assert_eq!(back.indexes(), g.indexes());
            let max_abs = g.values().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let bound = mode.max_abs_error(max_abs) * 0.51 + 1e-9; // round-to-nearest
            for (orig, rec) in g.values().iter().zip(back.values()) {
                assert!(
                    (orig - rec).abs() <= bound * 1.01,
                    "{mode:?}: {orig} vs {rec} (bound {bound})"
                );
            }
        }
    }

    #[test]
    fn wire_size_saves_vs_coo() {
        let g = random_coo(1000, 5);
        let k = g.nnz() as u64;
        let coo_wire = 2 * k;
        let q16 = QuantizedCoo::quantize(&g, QuantMode::Q16).wire_elems();
        let q8 = QuantizedCoo::quantize(&g, QuantMode::Q8).wire_elems();
        assert!(q16 < coo_wire && q16 >= k + k / 2);
        assert!(q8 < q16 && q8 >= k + k / 4);
    }

    #[test]
    fn zero_and_empty_gradients() {
        let empty = CooGradient::new();
        let q = QuantizedCoo::quantize(&empty, QuantMode::Q8);
        assert_eq!(q.dequantize(), empty);
        let zeros = CooGradient::from_sorted(vec![1, 2], vec![0.0, 0.0]);
        let q = QuantizedCoo::quantize(&zeros, QuantMode::Q16);
        assert_eq!(q.dequantize().values(), &[0.0, 0.0]);
    }

    #[test]
    fn extreme_values_survive() {
        let g = CooGradient::from_sorted(vec![0, 1], vec![1e-8, 1e8]);
        let q = QuantizedCoo::quantize(&g, QuantMode::Q16);
        let back = q.dequantize();
        // The large value is exact (it defines the scale)…
        assert!((back.values()[1] - 1e8).abs() / 1e8 < 1e-4);
        // …the tiny one collapses to zero (expected for linear quantization).
        assert!(back.values()[0].abs() <= q.mode().max_abs_error(1e8));
    }
}
