//! Threshold estimators: how each scheme decides the top-k cut-off each iteration.
//!
//! Two estimators from the paper:
//!
//! - [`PeriodicExactEstimator`] — Ok-Topk's strategy (§3.1.3): gradient statistics
//!   along the time dimension form a slowly changing stochastic process, so compute
//!   the *exact* threshold (k-th largest magnitude, quickselect) only every τ′
//!   iterations and reuse it in between. Steady-state cost: one O(n) scan.
//! - [`GaussianEstimator`] — Gaussiank's strategy (\[41\], §2): fit a normal
//!   distribution to the gradient values and read the threshold off the percent-point
//!   function. O(n) every iteration, but systematically *over*-estimates the threshold
//!   late in training (the fitted Gaussian has a longer tail than the real, sharply
//!   peaked distribution), hence under-selects k — the effect Figs. 4 and 6 show.
//!   The optional scaling mode reproduces §5.4's fairness adjustment: scale the
//!   threshold down until at least `3k/4` values are selected.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::scratch::{exact_threshold_scratch, SelectScratch, SCAN_GRAIN};
use crate::select::exact_threshold;
use crate::stats::{mean_std, normal_ppf};

/// Count entries with `|v| >= th`: SIMD lanes within each chunk
/// ([`crate::simd::count_abs_ge`]), data-parallel through the okpar pool above
/// the [`SCAN_GRAIN`] granularity cutoff. A count is an integer reduction, so
/// the result is identical to the serial scan regardless of chunk completion
/// order or lane width.
fn count_abs_ge(values: &[f32], th: f32) -> usize {
    let threads = okpar::threads_for(values.len(), SCAN_GRAIN);
    if threads <= 1 {
        return crate::simd::count_abs_ge(values, th);
    }
    let total = AtomicUsize::new(0);
    okpar::run_chunks(values.len(), threads, |_, r| {
        let c = crate::simd::count_abs_ge(&values[r], th);
        total.fetch_add(c, Ordering::Relaxed);
    });
    total.into_inner()
}

/// Strategy for producing the |value| cut-off used to sparsify a gradient.
pub trait ThresholdEstimator {
    /// Threshold for iteration `t` (1-based, matching Algorithm 1) on gradient
    /// `values`, targeting `k` survivors.
    fn threshold(&mut self, t: usize, values: &[f32], k: usize) -> f32;

    /// As [`threshold`](Self::threshold), but any expensive exact computation may
    /// use the caller's pooled scratch buffers instead of allocating. The default
    /// ignores the scratch; estimators whose exact pass allocates should override.
    fn threshold_scratch(
        &mut self,
        t: usize,
        values: &[f32],
        k: usize,
        scratch: &mut SelectScratch,
    ) -> f32 {
        let _ = scratch;
        self.threshold(t, values, k)
    }

    /// Whether calling `threshold` at iteration `t` performs the expensive exact
    /// computation (true) or reuses a cached/cheap estimate (false). Harnesses use
    /// this to charge the right sparsification cost.
    fn is_expensive_at(&self, t: usize) -> bool;

    /// Short name for reports (e.g. "periodic-exact").
    fn name(&self) -> &'static str;
}

/// Ok-Topk's periodic exact threshold with reuse (§3.1.3, Algorithm 1 lines 2-4).
#[derive(Clone, Debug)]
pub struct PeriodicExactEstimator {
    period: usize,
    cached: Option<f32>,
}

impl PeriodicExactEstimator {
    /// `period` is the paper's τ′ (e.g. 32 for VGG/LSTM, 128 for BERT).
    /// A fresh estimator re-evaluating every `period` (= τ′) iterations.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1);
        Self { period, cached: None }
    }

    /// The re-evaluation period τ′.
    pub fn period(&self) -> usize {
        self.period
    }

    /// The currently cached threshold (for checkpointing).
    pub fn cached(&self) -> Option<f32> {
        self.cached
    }

    /// Restore a cached threshold from a checkpoint.
    pub fn set_cached(&mut self, th: Option<f32>) {
        self.cached = th;
    }

    fn due(&self, t: usize) -> bool {
        // Algorithm 1: re-evaluate when (t-1) mod τ' == 0, t starting at 1.
        t >= 1 && (t - 1).is_multiple_of(self.period)
    }
}

impl ThresholdEstimator for PeriodicExactEstimator {
    fn threshold(&mut self, t: usize, values: &[f32], k: usize) -> f32 {
        if self.due(t) || self.cached.is_none() {
            self.cached = Some(exact_threshold(values, k));
        }
        self.cached.expect("cache filled above")
    }

    fn threshold_scratch(
        &mut self,
        t: usize,
        values: &[f32],
        k: usize,
        scratch: &mut SelectScratch,
    ) -> f32 {
        if self.due(t) || self.cached.is_none() {
            self.cached = Some(exact_threshold_scratch(values, k, scratch));
        }
        self.cached.expect("cache filled above")
    }

    fn is_expensive_at(&self, t: usize) -> bool {
        self.due(t) || self.cached.is_none()
    }

    fn name(&self) -> &'static str {
        "periodic-exact"
    }
}

/// Gaussiank's percent-point-function threshold (\[41\]).
#[derive(Clone, Debug)]
pub struct GaussianEstimator {
    /// §5.4 fairness adjustment: if fewer than `3k/4` values survive, scale the
    /// threshold down (by ×0.9 steps) until enough do.
    pub scale_to_three_quarters: bool,
}

impl GaussianEstimator {
    /// A Gaussiank estimator; `scale_to_three_quarters` enables the §5.4 adjustment.
    pub fn new(scale_to_three_quarters: bool) -> Self {
        Self { scale_to_three_quarters }
    }

    /// The raw Gaussian estimate: if values ~ N(μ, σ), then
    /// `P(|X| ≥ t) ≈ k/n` at `t = |μ| + σ·Φ⁻¹(1 − k/(2n))` (two-tailed, μ ≈ 0).
    pub fn raw_threshold(values: &[f32], k: usize) -> f32 {
        let n = values.len();
        if n == 0 || k == 0 {
            return f32::INFINITY;
        }
        if k >= n {
            return 0.0;
        }
        let (mean, std) = mean_std(values);
        let p = 1.0 - (k as f64) / (2.0 * n as f64);
        let z = normal_ppf(p.clamp(1e-12, 1.0 - 1e-12));
        (mean.abs() + std * z) as f32
    }
}

impl ThresholdEstimator for GaussianEstimator {
    fn threshold(&mut self, _t: usize, values: &[f32], k: usize) -> f32 {
        let mut th = Self::raw_threshold(values, k);
        if self.scale_to_three_quarters && th.is_finite() && th > 0.0 {
            let target = (3 * k) / 4;
            let mut selected = count_abs_ge(values, th);
            // Bounded loop: threshold decays geometrically, so this terminates fast;
            // the paper notes the adjustment cost is negligible next to comm/compute.
            let mut guard = 0;
            while selected < target && guard < 200 {
                th *= 0.9;
                selected = count_abs_ge(values, th);
                guard += 1;
            }
        }
        th
    }

    fn is_expensive_at(&self, _t: usize) -> bool {
        // Always a cheap O(n) pass — that is Gaussiank's selling point.
        false
    }

    fn name(&self) -> &'static str {
        "gaussian-ppf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn periodic_reuses_between_reevals() {
        let mut est = PeriodicExactEstimator::new(4);
        let v1: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let th1 = est.threshold(1, &v1, 10);
        assert!(est.is_expensive_at(1));
        // Different data at t=2..4 must reuse the cached threshold.
        let v2: Vec<f32> = (0..100).map(|i| -(i as f32)).collect();
        assert!(!est.is_expensive_at(2));
        assert_eq!(est.threshold(2, &v2, 10), th1);
        assert_eq!(est.threshold(4, &v2, 10), th1);
        // t=5 → (5-1)%4==0 → re-evaluate.
        assert!(est.is_expensive_at(5));
        assert_ne!(est.threshold(5, &v2, 10), th1);
    }

    #[test]
    fn periodic_exact_matches_reference_at_reeval() {
        let mut est = PeriodicExactEstimator::new(8);
        let values: Vec<f32> = (0..64).map(|i| ((i * 37) % 64) as f32 - 32.0).collect();
        let th = est.threshold(1, &values, 5);
        assert_eq!(th, crate::select::exact_threshold_by_sort(&values, 5));
    }

    #[test]
    fn gaussian_close_to_exact_on_gaussian_data() {
        // On genuinely Gaussian data the PPF estimate should be near the exact cut.
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<f32> = (0..50_000)
            .map(|_| {
                // Box-Muller
                let u1: f64 = rng.gen_range(1e-9..1.0);
                let u2: f64 = rng.gen();
                ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
            })
            .collect();
        let k = 500;
        let est = GaussianEstimator::raw_threshold(&values, k);
        let exact = exact_threshold(&values, k);
        assert!((est - exact).abs() / exact < 0.05, "est={est} exact={exact}");
    }

    #[test]
    fn gaussian_overestimates_on_heavy_tailed_data() {
        // A sharply peaked distribution (most mass near zero, few large values) — the
        // shape of late-training gradients. The fitted Gaussian's σ is inflated by the
        // outliers, so the PPF threshold lands above the true k-th magnitude and the
        // estimator under-selects: the effect in Figs. 4 and 6.
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<f32> = (0..50_000)
            .map(|i| {
                if i % 100 == 0 {
                    rng.gen_range(-3.0f32..3.0) // rare large components
                } else {
                    rng.gen_range(-0.01f32..0.01) // bulk near zero
                }
            })
            .collect();
        let k = 5_000; // 10% density: mostly inside the near-zero bulk
        let est = GaussianEstimator::raw_threshold(&values, k);
        let exact = exact_threshold(&values, k);
        assert!(est > exact * 2.0, "est={est} exact={exact}");
        let selected = values.iter().filter(|v| v.abs() >= est).count();
        assert!(selected < k / 2, "selected={selected}, k={k}");
    }

    #[test]
    fn gaussian_scaling_recovers_three_quarters() {
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<f32> = (0..20_000)
            .map(|i| {
                if i % 100 == 0 {
                    rng.gen_range(-3.0f32..3.0)
                } else {
                    rng.gen_range(-0.01..0.01)
                }
            })
            .collect();
        let k = 2_000;
        let mut est = GaussianEstimator::new(true);
        let th = est.threshold(1, &values, k);
        let selected = values.iter().filter(|v| v.abs() >= th).count();
        assert!(selected >= (3 * k) / 4, "selected={selected}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(GaussianEstimator::raw_threshold(&[], 5), f32::INFINITY);
        assert_eq!(GaussianEstimator::raw_threshold(&[1.0, 2.0], 2), 0.0);
        let mut est = PeriodicExactEstimator::new(4);
        assert_eq!(est.threshold(1, &[], 5), f32::INFINITY);
    }
}
