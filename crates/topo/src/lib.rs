#![warn(missing_docs)]

//! # topo — two-tier cluster topology model
//!
//! The paper analyses Ok-Topk on a flat α–β network, but the cloud-cluster
//! scenario (ROADMAP; "Towards Scalable Distributed Training of Deep Learning
//! on Public Cloud Clusters", arXiv 2010.10458) is dominated by a *two-tier*
//! topology: ranks are packed onto nodes with fast intra-node links (NVLink /
//! shared memory) while nodes talk over a slower, often oversubscribed,
//! inter-node fabric. This crate is the single shared description of that
//! shape, consulted by
//!
//! - simnet's charging points (`Cluster::with_topology`) to resolve per-tier
//!   link parameters at every send,
//! - the tier-aggregated traffic counters (`net.intra_bytes` /
//!   `net.inter_bytes`),
//! - the hierarchical collectives (intra-node reduce → inter-node exchange →
//!   intra-node broadcast), which group ranks by [`Topology::node_of`].
//!
//! ## Shape vs. parameters
//!
//! A topology always carries a *shape* (ranks → nodes, consecutive blocks of
//! `ranks_per_node`). Tier link parameters are optional:
//!
//! - [`Topology::nodes_of`] builds a **shape-only** topology: link charging
//!   falls back to the cluster's flat [cost model] for both tiers, so timing
//!   is bit-identical to no topology at all. This is what `SIMNET_TOPO=2x8`
//!   installs session-wide — it proves flat schemes are unaffected by the
//!   subsystem while still exercising node grouping and tier counters.
//! - [`Topology::two_tier`] additionally pins per-tier `(α, β)`; an optional
//!   [oversubscription ratio](Topology::with_oversubscription) multiplies the
//!   inter-node β, statically approximating uplink contention.
//!
//! [cost model]: https://en.wikipedia.org/wiki/Latency_(engineering)

use std::sync::OnceLock;

/// Which tier a (src, dst) rank pair communicates over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkClass {
    /// Both endpoints live on the same node.
    Intra,
    /// The endpoints live on different nodes (or there is no topology — a
    /// flat network is all inter-node fabric by convention).
    Inter,
}

/// Per-tier latency/bandwidth parameters, seconds and seconds-per-element.
#[derive(Clone, Copy, Debug, PartialEq)]
struct TierParams {
    intra_alpha: f64,
    intra_beta: f64,
    inter_alpha: f64,
    inter_beta: f64,
}

/// A two-tier cluster topology: consecutive blocks of `ranks_per_node` ranks
/// form a node; links are classified intra- or inter-node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Topology {
    ranks_per_node: usize,
    tiers: Option<TierParams>,
    oversub: f64,
}

impl Topology {
    /// Shape-only topology: rank → node mapping with **no** tier parameters.
    /// Link charging falls back to the cluster's flat cost model, so installing
    /// this is timing-neutral; only grouping and tier accounting change.
    pub fn nodes_of(ranks_per_node: usize) -> Self {
        assert!(ranks_per_node >= 1, "ranks_per_node must be >= 1");
        Self { ranks_per_node, tiers: None, oversub: 1.0 }
    }

    /// Full two-tier topology with explicit per-tier `(α, β)` link parameters.
    pub fn two_tier(ranks_per_node: usize, intra: (f64, f64), inter: (f64, f64)) -> Self {
        assert!(ranks_per_node >= 1, "ranks_per_node must be >= 1");
        Self {
            ranks_per_node,
            tiers: Some(TierParams {
                intra_alpha: intra.0,
                intra_beta: intra.1,
                inter_alpha: inter.0,
                inter_beta: inter.1,
            }),
            oversub: 1.0,
        }
    }

    /// Multiply the inter-node β by `ratio` (≥ 1), statically approximating an
    /// oversubscribed uplink where concurrent inter-node flows share capacity.
    pub fn with_oversubscription(mut self, ratio: f64) -> Self {
        assert!(ratio >= 1.0, "oversubscription ratio must be >= 1");
        self.oversub = ratio;
        self
    }

    /// The configured oversubscription ratio (1.0 = fully provisioned).
    pub fn oversubscription(&self) -> f64 {
        self.oversub
    }

    /// Ranks packed onto each node.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Whether this topology carries tier link parameters (false = shape-only).
    pub fn has_tier_params(&self) -> bool {
        self.tiers.is_some()
    }

    /// Node index of `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Number of nodes a cluster of `size` ranks occupies (last may be partial).
    pub fn nodes(&self, size: usize) -> usize {
        size.div_ceil(self.ranks_per_node)
    }

    /// Classify the link between two ranks.
    pub fn classify(&self, src: usize, dst: usize) -> LinkClass {
        if self.node_of(src) == self.node_of(dst) {
            LinkClass::Intra
        } else {
            LinkClass::Inter
        }
    }

    /// True when both ranks share a node.
    pub fn is_intra(&self, src: usize, dst: usize) -> bool {
        self.classify(src, dst) == LinkClass::Intra
    }

    /// The node leader (lowest rank on the node) responsible for `rank`'s
    /// inter-node traffic in hierarchical collectives.
    pub fn leader_of(&self, rank: usize) -> usize {
        self.node_of(rank) * self.ranks_per_node
    }

    /// Whether `rank` is its node's leader.
    pub fn is_leader(&self, rank: usize) -> bool {
        rank.is_multiple_of(self.ranks_per_node)
    }

    /// All ranks on `node` within a cluster of `size` ranks.
    pub fn node_members(&self, node: usize, size: usize) -> Vec<usize> {
        let lo = node * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(size);
        (lo..hi).collect()
    }

    /// The leader rank of every node in a cluster of `size` ranks.
    pub fn leaders(&self, size: usize) -> Vec<usize> {
        (0..self.nodes(size)).map(|n| n * self.ranks_per_node).collect()
    }

    /// Effective `(α, β)` for the `src → dst` link, or `None` when this is a
    /// shape-only topology and the caller should fall back to its flat cost
    /// model. The oversubscription ratio is folded into the inter-node β here,
    /// so every charging point sees the same effective parameters.
    pub fn tier_params(&self, src: usize, dst: usize) -> Option<(f64, f64)> {
        let t = self.tiers.as_ref()?;
        Some(match self.classify(src, dst) {
            LinkClass::Intra => (t.intra_alpha, t.intra_beta),
            LinkClass::Inter => (t.inter_alpha, t.inter_beta * self.oversub),
        })
    }

    /// Parse a `SIMNET_TOPO`-style spec: `NxR` (N nodes of R ranks) or just
    /// `R` (ranks per node; node count follows from the cluster size). The
    /// result is shape-only — session-wide defaults must never shift modeled
    /// clocks, only grouping and tier accounting.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        let rpn_str = match spec.split_once(['x', 'X']) {
            Some((nodes, rpn)) => {
                let _nodes: usize = nodes
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad node count in topology spec {spec:?}"))?;
                rpn
            }
            None => spec,
        };
        let rpn: usize = rpn_str
            .trim()
            .parse()
            .map_err(|_| format!("bad ranks-per-node in topology spec {spec:?}"))?;
        if rpn == 0 {
            return Err(format!("ranks-per-node must be >= 1 in topology spec {spec:?}"));
        }
        Ok(Self::nodes_of(rpn))
    }

    /// The session-default topology from `SIMNET_TOPO` (e.g. `2x8`), parsed
    /// once. Invalid specs warn to stderr and fall back to no topology.
    pub fn from_env() -> Option<&'static Topology> {
        static DEFAULT: OnceLock<Option<Topology>> = OnceLock::new();
        DEFAULT
            .get_or_init(|| {
                let spec = std::env::var("SIMNET_TOPO").ok()?;
                if spec.trim().is_empty() || spec.trim().eq_ignore_ascii_case("flat") {
                    return None;
                }
                match Topology::parse(&spec) {
                    Ok(t) => Some(t),
                    Err(e) => {
                        eprintln!("simnet: ignoring SIMNET_TOPO: {e}");
                        None
                    }
                }
            })
            .as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_consecutive_blocks_to_nodes() {
        let t = Topology::nodes_of(4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.nodes(16), 4);
        assert_eq!(t.nodes(17), 5);
        assert_eq!(t.node_members(1, 16), vec![4, 5, 6, 7]);
        assert_eq!(t.node_members(4, 17), vec![16]);
        assert_eq!(t.leaders(16), vec![0, 4, 8, 12]);
    }

    #[test]
    fn classifies_links_by_shared_node() {
        let t = Topology::nodes_of(4);
        assert_eq!(t.classify(0, 3), LinkClass::Intra);
        assert_eq!(t.classify(3, 4), LinkClass::Inter);
        assert!(t.is_intra(5, 6));
        assert!(!t.is_intra(0, 8));
    }

    #[test]
    fn leaders_are_lowest_rank_per_node() {
        let t = Topology::nodes_of(8);
        assert_eq!(t.leader_of(0), 0);
        assert_eq!(t.leader_of(7), 0);
        assert_eq!(t.leader_of(8), 8);
        assert!(t.is_leader(8));
        assert!(!t.is_leader(9));
    }

    #[test]
    fn shape_only_yields_no_tier_params() {
        let t = Topology::nodes_of(4);
        assert!(!t.has_tier_params());
        assert_eq!(t.tier_params(0, 1), None);
        assert_eq!(t.tier_params(0, 5), None);
    }

    #[test]
    fn two_tier_resolves_params_by_class() {
        let t = Topology::two_tier(4, (1e-6, 1e-9), (20e-6, 4e-9));
        assert_eq!(t.tier_params(0, 1), Some((1e-6, 1e-9)));
        assert_eq!(t.tier_params(0, 4), Some((20e-6, 4e-9)));
    }

    #[test]
    fn oversubscription_scales_inter_beta_only() {
        let t = Topology::two_tier(4, (1e-6, 1e-9), (20e-6, 4e-9)).with_oversubscription(8.0);
        assert_eq!(t.tier_params(1, 2), Some((1e-6, 1e-9)));
        assert_eq!(t.tier_params(1, 9), Some((20e-6, 32e-9)));
        assert_eq!(t.oversubscription(), 8.0);
    }

    #[test]
    fn parses_nodes_x_rpn_and_bare_rpn() {
        assert_eq!(Topology::parse("2x8").unwrap().ranks_per_node(), 8);
        assert_eq!(Topology::parse(" 4X16 ").unwrap().ranks_per_node(), 16);
        assert_eq!(Topology::parse("8").unwrap().ranks_per_node(), 8);
        assert!(!Topology::parse("2x8").unwrap().has_tier_params());
        assert!(Topology::parse("0x4").is_ok()); // node count informational only
        assert!(Topology::parse("4x0").is_err());
        assert!(Topology::parse("abc").is_err());
        assert!(Topology::parse("2x").is_err());
    }

    #[test]
    fn degenerate_single_rank_nodes_are_all_inter() {
        let t = Topology::nodes_of(1);
        assert_eq!(t.classify(0, 1), LinkClass::Inter);
        assert!(t.is_leader(5));
        assert_eq!(t.nodes(7), 7);
    }
}
