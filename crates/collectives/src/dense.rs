//! Dense collectives: Rabenseifner allreduce, ring allreduce, allgather, broadcast.
//!
//! Rabenseifner's algorithm \[12\] = recursive-halving reduce-scatter followed by a
//! recursive-doubling allgather. It meets the `2n(P−1)/P` bandwidth lower bound
//! quoted in Table 1 with `2·log P` latency, but requires a power-of-two rank count;
//! [`allreduce_inplace`] falls back to a ring (same bandwidth, `2(P−1)` latency) for
//! other sizes.
//!
//! The hot paths are allocation-free in the steady state: chunk regions are
//! computed arithmetically (no boundary vector), send chunks come from the
//! communicator's recycled-buffer pool, and every received chunk is recycled
//! after accumulation.

use simnet::{Net, WireSize};
use std::sync::Arc;

const TAG_RS: u64 = 0x10; // reduce-scatter phase
const TAG_AG: u64 = 0x11; // allgather phase
const TAG_BC: u64 = 0x12; // broadcast
const TAG_AR64: u64 = 0x13; // small f64 allreduce
const TAG_ITEMS: u64 = 0x14; // generic item allgather
const TAG_A2A: u64 = 0x15; // alltoallv

/// Element range of regions `[a, b)` of the equal partition of `n` elements into
/// `p` regions (region `j` spans `[n·j/p, n·(j+1)/p)`). Same boundaries as
/// `sparse::partition::equal_boundaries`, computed on demand without the vector.
fn region(n: usize, p: usize, a: usize, b: usize) -> std::ops::Range<usize> {
    n * a / p..n * b / p
}

/// Evenly spreads a caller-attributed compute budget across the steps of a
/// collective. Each share is spent between posting a step's receive and waiting
/// on it, so the message drains concurrently with the compute (DenseOvlp).
#[derive(Clone, Copy)]
struct StepBudget {
    per_step: f64,
}

impl StepBudget {
    fn new(total: f64, steps: usize) -> Self {
        Self { per_step: if steps > 0 { total / steps as f64 } else { 0.0 } }
    }

    fn spend<C: Net>(&self, comm: &mut C) {
        if self.per_step > 0.0 {
            comm.compute(self.per_step);
        }
    }
}

/// In-place sum-allreduce of a dense f32 vector across all ranks.
///
/// Picks Rabenseifner for power-of-two cluster sizes, ring otherwise. `data` must
/// have the same length on every rank.
pub fn allreduce_inplace<C: Net>(comm: &mut C, data: &mut [f32]) {
    allreduce_overlapped(comm, data, 0.0);
}

/// [`allreduce_inplace`] with `overlap_compute` seconds of caller-attributed
/// local work (e.g. the DenseOvlp backward tail) interleaved into the exchange.
///
/// The budget is spread evenly over the algorithm's steps and spent between
/// posting each step's receive and waiting on it, so compute runs while the
/// message drains through the reception port — real overlap in modeled time,
/// not an accounting fiction. A budget of `0.0` is bit-identical to
/// [`allreduce_inplace`] in both results and timing.
pub fn allreduce_overlapped<C: Net>(comm: &mut C, data: &mut [f32], overlap_compute: f64) {
    let p = comm.size();
    if p == 1 {
        if overlap_compute > 0.0 {
            comm.compute(overlap_compute);
        }
        return;
    }
    if p.is_power_of_two() {
        let steps = 2 * p.trailing_zeros() as usize;
        rabenseifner(comm, data, StepBudget::new(overlap_compute, steps));
    } else {
        ring_allreduce(comm, data, StepBudget::new(overlap_compute, 2 * (p - 1)));
    }
}

/// Copy `data[range]` into a pooled buffer, ready to send.
fn pooled_chunk<C: Net>(comm: &mut C, data: &[f32], range: std::ops::Range<usize>) -> Vec<f32> {
    let mut chunk = comm.take_f32(range.len());
    chunk.extend_from_slice(&data[range]);
    chunk
}

/// Rabenseifner's allreduce for power-of-two P.
fn rabenseifner<C: Net>(comm: &mut C, data: &mut [f32], overlap: StepBudget) {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    debug_assert!(p.is_power_of_two());

    // Recursive-halving reduce-scatter: the segment of regions this rank still
    // reduces shrinks by half each step.
    let (mut seg_lo, mut seg_len) = (0usize, p);
    let mut dist = p / 2;
    while dist >= 1 {
        let partner = rank ^ dist;
        let mid = seg_lo + seg_len / 2;
        let (keep, give) = if rank & dist == 0 {
            ((seg_lo, mid), (mid, seg_lo + seg_len))
        } else {
            ((mid, seg_lo + seg_len), (seg_lo, mid))
        };
        let chunk = pooled_chunk(comm, data, region(n, p, give.0, give.1));
        comm.send(partner, TAG_RS, chunk);
        let req = comm.irecv::<Vec<f32>>(partner, TAG_RS);
        overlap.spend(comm);
        let got = comm.wait_recv(req);
        for (d, g) in data[region(n, p, keep.0, keep.1)].iter_mut().zip(&got) {
            *d += g;
        }
        comm.recycle_f32(got);
        seg_lo = keep.0;
        seg_len /= 2;
        dist /= 2;
    }

    // Recursive-doubling allgather: segments re-merge in reverse order. At distance
    // `d`, rank and partner hold adjacent equal-length blocks (lower block at the
    // rank whose `d` bit is clear).
    let mut dist = 1;
    while dist < p {
        let partner = rank ^ dist;
        let chunk = pooled_chunk(comm, data, region(n, p, seg_lo, seg_lo + seg_len));
        comm.send(partner, TAG_AG, chunk);
        let req = comm.irecv::<Vec<f32>>(partner, TAG_AG);
        overlap.spend(comm);
        let got = comm.wait_recv(req);
        let partner_lo = if rank & dist == 0 { seg_lo + seg_len } else { seg_lo - seg_len };
        data[region(n, p, partner_lo, partner_lo + seg_len)].copy_from_slice(&got);
        comm.recycle_f32(got);
        seg_lo = seg_lo.min(partner_lo);
        seg_len *= 2;
        dist *= 2;
    }
}

/// Ring allreduce for arbitrary P: P−1 reduce-scatter steps + P−1 allgather steps.
fn ring_allreduce<C: Net>(comm: &mut C, data: &mut [f32], overlap: StepBudget) {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;

    // Reduce-scatter: at step s, send the partial sum of chunk (rank − s) and
    // accumulate chunk (rank − s − 1) arriving from the left.
    for s in 0..p - 1 {
        let send_chunk = (rank + p - s) % p;
        let recv_chunk = (rank + p - s - 1) % p;
        let chunk = pooled_chunk(comm, data, region(n, p, send_chunk, send_chunk + 1));
        comm.send(right, TAG_RS, chunk);
        let req = comm.irecv::<Vec<f32>>(left, TAG_RS);
        overlap.spend(comm);
        let got = comm.wait_recv(req);
        for (d, g) in data[region(n, p, recv_chunk, recv_chunk + 1)].iter_mut().zip(&got) {
            *d += g;
        }
        comm.recycle_f32(got);
    }
    // Allgather: circulate the fully reduced chunks.
    for s in 0..p - 1 {
        let send_chunk = (rank + 1 + p - s) % p;
        let recv_chunk = (rank + p - s) % p;
        let chunk = pooled_chunk(comm, data, region(n, p, send_chunk, send_chunk + 1));
        comm.send(right, TAG_AG, chunk);
        let req = comm.irecv::<Vec<f32>>(left, TAG_AG);
        overlap.spend(comm);
        let got = comm.wait_recv(req);
        data[region(n, p, recv_chunk, recv_chunk + 1)].copy_from_slice(&got);
        comm.recycle_f32(got);
    }
}

/// Block reduce-scatter: afterwards each rank holds the fully reduced region `rank`
/// of the equal partition (returned together with its element offset).
pub fn reduce_scatter_block<C: Net>(comm: &mut C, data: &[f32]) -> (usize, Vec<f32>) {
    let p = comm.size();
    let rank = comm.rank();
    let n = data.len();
    if p == 1 {
        return (0, data.to_vec());
    }
    // Direct exchange: send region j to rank j (rotated to avoid endpoint hot-spots),
    // then accumulate the P−1 incoming shards of our own region.
    let mut mine = data[region(n, p, rank, rank + 1)].to_vec();
    for s in 1..p {
        let dst = (rank + s) % p;
        let chunk = pooled_chunk(comm, data, region(n, p, dst, dst + 1));
        comm.send(dst, TAG_RS, chunk);
    }
    for s in 1..p {
        let src = (rank + p - s) % p;
        let got: Vec<f32> = comm.recv(src, TAG_RS);
        for (m, g) in mine.iter_mut().zip(&got) {
            *m += g;
        }
        comm.recycle_f32(got);
    }
    (region(n, p, rank, rank).start, mine)
}

/// An item tagged with its origin rank. The rank is *schedule metadata* — in a real
/// MPI allgatherv the origin is implied by the displacement array, not transmitted —
/// so the wire size counts only the payload.
struct Keyed<T>(u32, T);

impl<T: Clone> Clone for Keyed<T> {
    fn clone(&self) -> Self {
        Keyed(self.0, self.1.clone())
    }
}

impl<T: WireSize> WireSize for Keyed<T> {
    fn wire_elems(&self) -> u64 {
        self.1.wire_elems()
    }
}

/// Allgather of one item per rank; returns the items indexed by rank.
///
/// Uses recursive doubling (log P steps) for power-of-two P, a ring otherwise.
/// The item type carries its own wire size, so variable-size payloads (an
/// *allgatherv*) are natural.
pub fn allgather_items<C: Net, T>(comm: &mut C, mine: T) -> Vec<T>
where
    T: Clone + Send + WireSize + 'static,
{
    let p = comm.size();
    let rank = comm.rank();
    let mut slots: Vec<Option<T>> = (0..p).map(|_| None).collect();
    slots[rank] = Some(mine);
    if p == 1 {
        return slots.into_iter().map(|s| s.expect("own slot filled")).collect();
    }
    if p.is_power_of_two() {
        // Recursive doubling: exchange everything gathered so far with rank ^ dist.
        let mut dist = 1;
        while dist < p {
            let partner = rank ^ dist;
            let have: Vec<Keyed<T>> = slots
                .iter()
                .enumerate()
                .filter_map(|(r, s)| s.clone().map(|v| Keyed(r as u32, v)))
                .collect();
            let got: Vec<Keyed<T>> = comm.sendrecv(partner, TAG_ITEMS, have, partner, TAG_ITEMS);
            for Keyed(r, v) in got {
                slots[r as usize] = Some(v);
            }
            dist *= 2;
        }
    } else {
        // Ring: at step s forward the item received at step s−1.
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        for s in 0..p - 1 {
            let fwd = (rank + p - s) % p;
            // The forwarded item must also stay in the result, so this clone is
            // semantically required (the wire takes ownership).
            let item = slots[fwd].clone().expect("ring invariant: item present");
            let got: T = comm.sendrecv(right, TAG_ITEMS, item, left, TAG_ITEMS);
            slots[(rank + p - s - 1) % p] = Some(got);
        }
    }
    slots.into_iter().map(|s| s.expect("allgather filled every slot")).collect()
}

/// Binomial-tree broadcast from `root`.
///
/// The payload travels as one `Arc`-shared buffer: relays clone the handle, not
/// the data, so a P-rank broadcast allocates the value once at the root instead
/// of once per tree edge. Each rank materializes its own copy only on return
/// (and the last holder of the handle gets the original back without copying).
pub fn broadcast<C: Net, T>(comm: &mut C, root: usize, value: Option<T>) -> T
where
    T: Clone + Send + Sync + WireSize + 'static,
{
    let p = comm.size();
    let rank = comm.rank();
    // Work in a rotated space where the root is rank 0.
    let vrank = (rank + p - root) % p;
    let mut have: Option<Arc<T>> = if rank == root {
        Some(Arc::new(value.expect("root must provide the broadcast value")))
    } else {
        None
    };
    // Round r: ranks with vrank < 2^r and vrank + 2^r < p send to vrank + 2^r.
    let mut dist = 1;
    while dist < p {
        if vrank < dist {
            let target = vrank + dist;
            if target < p {
                let dst = (target + root) % p;
                comm.send_shared(dst, TAG_BC, have.clone().expect("sender holds the value"));
            }
        } else if vrank < 2 * dist {
            let src = ((vrank - dist) + root) % p;
            have = Some(comm.recv_shared(src, TAG_BC));
        }
        dist *= 2;
    }
    let arc = have.expect("broadcast reached every rank");
    Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone())
}

/// Personalized all-to-all exchange (MPI_Alltoallv): rank `i` sends `items[j]` to
/// rank `j` and receives rank `j`'s `items[i]`, returned indexed by source.
///
/// This is the primitive underlying Ok-Topk's split-and-reduce; exposed here for
/// library users. Destinations are rotated (`(rank+s) mod P` at step `s`) to avoid
/// the endpoint congestion of Fig. 2a, and `items[rank]` is moved (not sent) to
/// its own slot.
pub fn alltoallv<C: Net, T>(comm: &mut C, items: Vec<T>) -> Vec<T>
where
    T: Clone + Send + WireSize + 'static,
{
    let p = comm.size();
    let rank = comm.rank();
    assert_eq!(items.len(), p, "alltoallv needs one item per destination rank");
    let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
    let mut items: Vec<Option<T>> = items.into_iter().map(Some).collect();
    out[rank] = items[rank].take();
    for s in 1..p {
        let dst = (rank + s) % p;
        comm.send(dst, TAG_A2A, items[dst].take().expect("each destination item used once"));
    }
    for s in 1..p {
        let src = (rank + p - s) % p;
        out[src] = Some(comm.recv(src, TAG_A2A));
    }
    out.into_iter().map(|o| o.expect("one item per source")).collect()
}

/// Small-vector f64 sum-allreduce (recursive doubling on the full vector).
///
/// Used for Ok-Topk's boundary consensus (§3.1.1): message size is `P+1` elements,
/// so latency dominates — `⌈log2 P⌉·α`, exactly the overhead the paper amortizes
/// over τ iterations.
pub fn allreduce_sum_f64<C: Net>(comm: &mut C, mut data: Vec<f64>) -> Vec<f64> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return data;
    }
    if p.is_power_of_two() {
        let mut dist = 1;
        while dist < p {
            let partner = rank ^ dist;
            let got: Vec<f64> = comm.sendrecv(partner, TAG_AR64, data.clone(), partner, TAG_AR64);
            for (d, g) in data.iter_mut().zip(&got) {
                *d += g;
            }
            dist *= 2;
        }
        data
    } else {
        // Gather-and-sum over a ring; fine for tiny vectors.
        let all = allgather_items(comm, data.clone());
        let mut sum = vec![0.0f64; data.len()];
        for v in all {
            for (s, x) in sum.iter_mut().zip(&v) {
                *s += x;
            }
        }
        sum
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};

    fn make_inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn reference_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0f32; inputs[0].len()];
        for v in inputs {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
        }
        sum
    }

    fn check_allreduce(p: usize, n: usize) {
        let inputs = make_inputs(p, n, 42 + p as u64);
        let expect = reference_sum(&inputs);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut data = inputs[comm.rank()].clone();
            allreduce_inplace(comm, &mut data);
            data
        });
        for (rank, got) in report.results.iter().enumerate() {
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-4, "rank {rank}: {g} vs {e}");
            }
        }
    }

    #[test]
    fn rabenseifner_matches_reference_pow2() {
        for p in [2, 4, 8, 16] {
            check_allreduce(p, 103); // non-divisible length exercises uneven regions
        }
    }

    #[test]
    fn ring_matches_reference_non_pow2() {
        for p in [3, 5, 6, 7] {
            check_allreduce(p, 64);
        }
    }

    #[test]
    fn allreduce_volume_is_2n_fraction() {
        // Rabenseifner per-rank sent volume should be ~2n(P−1)/P.
        let p = 8;
        let n = 1 << 12;
        let inputs = make_inputs(p, n, 1);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut data = inputs[comm.rank()].clone();
            allreduce_inplace(comm, &mut data);
        });
        let expected = 2.0 * n as f64 * (p - 1) as f64 / p as f64;
        for rank in 0..p {
            let sent = report.ledger.rank_elements(rank) as f64;
            assert!(
                (sent - expected).abs() / expected < 0.01,
                "rank {rank} sent {sent}, expected ~{expected}"
            );
        }
    }

    #[test]
    fn reduce_scatter_block_sums_own_region() {
        let p = 4;
        let n = 17;
        let inputs = make_inputs(p, n, 3);
        let expect = reference_sum(&inputs);
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| reduce_scatter_block(comm, &inputs[comm.rank()]));
        let mut reconstructed = vec![0.0f32; n];
        for (offset, chunk) in &report.results {
            reconstructed[*offset..*offset + chunk.len()].copy_from_slice(chunk);
        }
        for (r, e) in reconstructed.iter().zip(&expect) {
            assert!((r - e).abs() < 1e-4);
        }
    }

    #[test]
    fn allgather_items_pow2_and_ring() {
        for p in [2usize, 4, 8, 3, 5] {
            let report = Cluster::new(p, CostModel::aries()).run(|comm| {
                let mine: Vec<u32> = vec![comm.rank() as u32; comm.rank() + 1];
                allgather_items(comm, mine)
            });
            for got in &report.results {
                for (r, item) in got.iter().enumerate() {
                    assert_eq!(item, &vec![r as u32; r + 1], "p={p}");
                }
            }
        }
    }

    #[test]
    fn alltoallv_exchanges_personalized_items() {
        for p in [1usize, 2, 3, 5, 8] {
            let report = Cluster::new(p, CostModel::aries()).run(|comm| {
                // Item for destination j encodes (my rank, j) with j+1 elements.
                let items: Vec<Vec<u32>> =
                    (0..comm.size()).map(|j| vec![(comm.rank() * 100 + j) as u32; j + 1]).collect();
                alltoallv(comm, items)
            });
            for (rank, got) in report.results.iter().enumerate() {
                assert_eq!(got.len(), p);
                for (src, item) in got.iter().enumerate() {
                    assert_eq!(item, &vec![(src * 100 + rank) as u32; rank + 1], "p={p}");
                }
            }
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for p in [2usize, 3, 4, 7, 8] {
            for root in [0, p / 2, p - 1] {
                let report = Cluster::new(p, CostModel::aries()).run(|comm| {
                    let v = if comm.rank() == root { Some(vec![9.5f32, -1.0]) } else { None };
                    broadcast(comm, root, v)
                });
                for got in &report.results {
                    assert_eq!(got, &vec![9.5f32, -1.0], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn f64_allreduce_sums() {
        for p in [2usize, 4, 5] {
            let report = Cluster::new(p, CostModel::aries())
                .run(|comm| allreduce_sum_f64(comm, vec![comm.rank() as f64, 1.0]));
            let expect0: f64 = (0..p).map(|r| r as f64).sum();
            for got in &report.results {
                assert_eq!(got[0], expect0);
                assert_eq!(got[1], p as f64);
            }
        }
    }

    #[test]
    fn single_rank_noops() {
        let report = Cluster::new(1, CostModel::aries()).run(|comm| {
            let mut d = vec![1.0f32, 2.0];
            allreduce_inplace(comm, &mut d);
            let all = allgather_items(comm, vec![5u32]);
            let b = broadcast(comm, 0, Some(7u32));
            (d, all, b)
        });
        let (d, all, b) = &report.results[0];
        assert_eq!(d, &vec![1.0, 2.0]);
        assert_eq!(all, &vec![vec![5u32]]);
        assert_eq!(*b, 7);
        assert_eq!(report.ledger.total_elements(), 0);
    }
}
