//! Hierarchical (two-tier) collectives: intra-node reduce → inter-node exchange
//! among node leaders → intra-node broadcast.
//!
//! On a real cluster the links inside a node (NVLink, shared memory) are orders
//! of magnitude faster than the network between nodes, and the inter-node
//! fabric is often oversubscribed. A flat collective sends the same traffic
//! over both tiers; the hierarchical decomposition confines all but one
//! node-sized exchange to the fast tier, so inter-node volume and round count
//! drop from `f(P)` to `f(P / ranks_per_node)`.
//!
//! Group mechanics: each node's ranks `[node·rpn, min((node+1)·rpn, P))` form a
//! [`GroupComm`] whose group id is the node index; the node *leaders* (global
//! rank `node·rpn`, group-local rank 0) form a second group with the reserved
//! id [`LEADER_GROUP`]. With `rpn = 1` every rank is its own leader and each
//! algorithm degenerates to its flat counterpart — that is the behaviour on a
//! cluster with no topology installed.

use crate::dense::{allreduce_inplace, broadcast, reduce_scatter_block};
use crate::gtopk::{gtopk_allreduce, gtopk_reduce_to_root};
use simnet::{Comm, GroupComm, Net};
use sparse::CooGradient;

/// Tag for gathering reduce-scattered shards at the node leader.
const TAG_HIER_GATHER: u64 = 0x41;

/// Reserved [`GroupComm`] id of the inter-node leader group. Node groups use
/// their node index as id, so node counts must stay below this value.
pub const LEADER_GROUP: u16 = 0xFFFF;

/// The effective ranks-per-node for hierarchical schemes on `comm`: the
/// installed topology's grouping clamped to the cluster size, or 1 when no
/// topology is installed (every rank its own leader — the flat degeneration).
pub fn ranks_per_node(comm: &Comm) -> usize {
    comm.topology().map_or(1, |t| t.ranks_per_node()).clamp(1, comm.size())
}

/// This rank's node index and the global ranks of its node group.
fn node_group(rank: usize, size: usize, rpn: usize) -> (usize, Vec<usize>) {
    let node = rank / rpn;
    let lo = node * rpn;
    (node, (lo..(lo + rpn).min(size)).collect())
}

/// Global ranks of the node leaders (first rank of every node).
fn leaders(size: usize, rpn: usize) -> Vec<usize> {
    (0..size).step_by(rpn).collect()
}

/// Dense sum-reduce to rank 0 of `comm`: reduce-scatter, then gather the
/// fully-reduced shards at the root. On return rank 0's `data` holds the
/// communicator-wide sum; other ranks' buffers hold partial sums (clobbered).
///
/// This is the intra-node phase of the hierarchical schemes, exposed so
/// Ok-Topk's hierarchical variant can leave the node sum at the leader for a
/// single re-selection instead of paying a full intra-node allreduce.
pub fn reduce_to_root_dense<C: Net>(comm: &mut C, data: &mut [f32]) {
    let gsize = comm.size();
    if gsize == 1 {
        return;
    }
    let n = data.len();
    let (offset, mine) = reduce_scatter_block(comm, data);
    if comm.rank() == 0 {
        data[offset..offset + mine.len()].copy_from_slice(&mine);
        for src in 1..gsize {
            // Shard boundaries are the deterministic equal partition, so only
            // the payload travels.
            let lo = n * src / gsize;
            let got: Vec<f32> = comm.recv(src, TAG_HIER_GATHER);
            data[lo..lo + got.len()].copy_from_slice(&got);
            comm.recycle_f32(got);
        }
    } else {
        comm.send(0, TAG_HIER_GATHER, mine);
    }
}

/// Hierarchical dense sum-allreduce: intra-node reduce-scatter + gather at the
/// leader, leader-group allreduce, intra-node broadcast.
///
/// `data` must have the same length on every rank; afterwards every rank holds
/// the global sum. With `rpn = 1` this is exactly [`allreduce_inplace`].
pub fn hier_dense_allreduce<C: Net>(comm: &mut C, data: &mut [f32], rpn: usize) {
    let size = comm.size();
    let rank = comm.rank();
    let rpn = rpn.clamp(1, size);
    if rpn == 1 || size == 1 {
        return allreduce_inplace(comm, data);
    }
    comm.set_phase("hier-dense");
    let (node, members) = node_group(rank, size, rpn);
    assert!(size.div_ceil(rpn) < LEADER_GROUP as usize, "node count exceeds group-id space");

    // Phase 1 (intra): reduce-scatter the node sum across the node group, then
    // gather the shards at the leader. Bandwidth-optimal on the fast tier and
    // leaves the leader with the full node-local sum.
    {
        let mut g = GroupComm::new(comm, members.clone(), node as u16);
        reduce_to_root_dense(&mut g, data);
    }

    // Phase 2 (inter): leaders allreduce their node sums over the slow tier.
    if rank == members[0] {
        let mut g = GroupComm::new(comm, leaders(size, rpn), LEADER_GROUP);
        allreduce_inplace(&mut g, data);
    }

    // Phase 3 (intra): leader broadcasts the global sum within its node.
    let mut g = GroupComm::new(comm, members, node as u16);
    let v = if Net::rank(&g) == 0 { Some(data.to_vec()) } else { None };
    let out = broadcast(&mut g, 0, v);
    if Net::rank(&g) != 0 {
        data.copy_from_slice(&out);
    }
}

/// Hierarchical gTopk sparse allreduce: intra-node reduction tree with top-k
/// re-selection (result at the node leader), leader-group [`gtopk_allreduce`],
/// intra-node broadcast of the global selection.
///
/// Every rank returns the same ≤k-sparse gradient. The re-selection tree is the
/// same merge rule as flat gTopk, only regrouped so `log(rpn)` of its levels run
/// on the fast tier and `log(nodes)` on the slow one. With `rpn = 1` this is
/// exactly [`gtopk_allreduce`].
pub fn hier_gtopk_allreduce<C: Net>(
    comm: &mut C,
    local: CooGradient,
    k: usize,
    rpn: usize,
) -> CooGradient {
    let size = comm.size();
    let rank = comm.rank();
    let rpn = rpn.clamp(1, size);
    if rpn == 1 || size == 1 {
        return gtopk_allreduce(comm, local, k);
    }
    comm.set_phase("hier-gtopk");
    let (node, members) = node_group(rank, size, rpn);
    assert!(size.div_ceil(rpn) < LEADER_GROUP as usize, "node count exceeds group-id space");

    // Phase 1 (intra): tree-reduce with re-selection; the leader (group rank 0)
    // ends up holding the node's top-k.
    let node_topk = {
        let mut g = GroupComm::new(comm, members.clone(), node as u16);
        gtopk_reduce_to_root(&mut g, local, k)
    };

    // Phase 2 (inter): leaders run the flat gTopk allreduce among themselves.
    let result = if rank == members[0] {
        let mut g = GroupComm::new(comm, leaders(size, rpn), LEADER_GROUP);
        let mine = node_topk.expect("leader holds its node's reduction");
        Some(gtopk_allreduce(&mut g, mine, k))
    } else {
        None
    };

    // Phase 3 (intra): leader broadcasts the global selection within its node.
    comm.set_phase("hier-gtopk");
    let mut g = GroupComm::new(comm, members, node as u16);
    broadcast(&mut g, 0, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel, Topology};
    use sparse::select::topk_exact;

    fn make_inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p).map(|_| (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
    }

    fn reference_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
        let mut sum = vec![0.0f32; inputs[0].len()];
        for v in inputs {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
        }
        sum
    }

    #[test]
    fn hier_dense_matches_reference_across_shapes() {
        // Pow2 and non-pow2 cluster sizes, full and partial last nodes.
        for (p, rpn) in [(4usize, 2usize), (8, 2), (8, 4), (6, 4), (7, 2), (8, 8), (8, 1)] {
            let n = 103;
            let inputs = make_inputs(p, n, 17 + p as u64 + rpn as u64);
            let expect = reference_sum(&inputs);
            let report = Cluster::new(p, CostModel::aries()).run(move |comm| {
                let mut data = inputs[comm.rank()].clone();
                hier_dense_allreduce(comm, &mut data, rpn);
                data
            });
            for (rank, got) in report.results.iter().enumerate() {
                for (g, e) in got.iter().zip(&expect) {
                    assert!((g - e).abs() < 1e-4, "p={p} rpn={rpn} rank={rank}: {g} vs {e}");
                }
            }
        }
    }

    #[test]
    fn hier_dense_all_ranks_agree_bitwise() {
        let (p, rpn, n) = (8, 4, 64);
        let inputs = make_inputs(p, n, 5);
        let report = Cluster::new(p, CostModel::aries()).run(move |comm| {
            let mut data = inputs[comm.rank()].clone();
            hier_dense_allreduce(comm, &mut data, rpn);
            data
        });
        for got in &report.results[1..] {
            assert_eq!(got, &report.results[0]);
        }
    }

    fn random_topk(p: usize, n: usize, k: usize, seed: u64) -> Vec<CooGradient> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect()
    }

    #[test]
    fn hier_gtopk_identical_supports_give_exact_sum() {
        // Fully overlapping supports lose nothing to re-selection at any tier split.
        for rpn in [1usize, 2, 4] {
            let p = 8;
            let base = CooGradient::from_sorted(vec![2, 7, 40], vec![0.5, -1.0, 2.0]);
            let report = Cluster::new(p, CostModel::free())
                .run(move |comm| hier_gtopk_allreduce(comm, base.clone(), 3, rpn));
            for got in &report.results {
                assert_eq!(got.indexes(), &[2, 7, 40], "rpn={rpn}");
                assert_eq!(got.values(), &[4.0, -8.0, 16.0], "rpn={rpn}");
            }
        }
    }

    #[test]
    fn hier_gtopk_agrees_and_bounds_nnz() {
        for (p, rpn) in [(8usize, 2usize), (8, 4), (6, 4), (12, 4)] {
            let (n, k) = (500, 16);
            let locals = random_topk(p, n, k, 23);
            let report = Cluster::new(p, CostModel::aries())
                .run(move |comm| hier_gtopk_allreduce(comm, locals[comm.rank()].clone(), k, rpn));
            for got in &report.results[1..] {
                assert_eq!(got, &report.results[0], "p={p} rpn={rpn}");
            }
            assert!(report.results[0].nnz() <= k);
        }
    }

    #[test]
    fn hier_gtopk_rpn1_is_flat_gtopk_bitwise() {
        let (p, n, k) = (8, 400, 24);
        let locals = random_topk(p, n, k, 31);
        let l2 = locals.clone();
        let flat = Cluster::new(p, CostModel::aries())
            .run(move |comm| gtopk_allreduce(comm, locals[comm.rank()].clone(), k));
        let hier = Cluster::new(p, CostModel::aries())
            .run(move |comm| hier_gtopk_allreduce(comm, l2[comm.rank()].clone(), k, 1));
        assert_eq!(flat.results, hier.results);
    }

    #[test]
    fn hier_dense_cuts_inter_node_traffic() {
        // Under a two-tier topology the hierarchical variant must move fewer
        // bytes over inter-node links than the flat allreduce.
        let (p, rpn, n) = (8usize, 4usize, 1 << 12);
        let topo = Topology::two_tier(rpn, (1e-6, 1e-9), (25e-6, 8e-9));
        let inter = |topo: Topology, hier: bool| -> u64 {
            let inputs = make_inputs(p, n, 9);
            let report = Cluster::new(p, CostModel::aries())
                .with_topology(topo)
                .with_obs(true)
                .run(move |comm| {
                    let mut data = inputs[comm.rank()].clone();
                    if hier {
                        hier_dense_allreduce(comm, &mut data, rpn);
                    } else {
                        allreduce_inplace(comm, &mut data);
                    }
                });
            match report.metrics.get("net.inter_bytes") {
                Some(obs::MetricValue::PerRankU64(v)) => v.iter().sum(),
                other => panic!("missing inter_bytes counter: {other:?}"),
            }
        };
        let flat_bytes = inter(topo.clone(), false);
        let hier_bytes = inter(topo, true);
        assert!(
            hier_bytes < flat_bytes / 2,
            "hier moved {hier_bytes} inter-node bytes vs flat {flat_bytes}"
        );
    }
}
