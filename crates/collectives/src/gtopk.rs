//! gTopk: tree-based sparse allreduce with hierarchical re-selection (§2, \[42\]).
//!
//! A binary reduction tree merges pairs of k-sparse gradients and *re-selects the
//! top-k* of every merge, so the payload never exceeds 2k elements — that is how
//! gTopk defeats fill-in, at the price of discarding information at every level
//! (the result is an approximation of the true global top-k) and of paying the
//! selection cost `log P` times. A broadcast tree then distributes the final
//! top-k, for `4k·log P` total volume (Table 1).

use crate::dense::broadcast;
use simnet::Net;
use sparse::select::topk_exact;
use sparse::CooGradient;

const TAG_GTOPK: u64 = 0x30;

/// Re-select the k entries of largest magnitude from a merged COO gradient.
fn reselect(g: &CooGradient, k: usize) -> CooGradient {
    if g.nnz() <= k {
        return g.clone();
    }
    // Selection over the nnz values only (cheap: nnz ≤ 2k here), then re-assemble.
    let dense_vals: Vec<f32> = g.values().to_vec();
    let picked = topk_exact(&dense_vals, k);
    let keep: std::collections::HashSet<u32> = picked.indexes().iter().copied().collect();
    let mut idx = Vec::with_capacity(k);
    let mut val = Vec::with_capacity(k);
    for (pos, (i, v)) in g.iter().enumerate() {
        if keep.contains(&(pos as u32)) {
            idx.push(i);
            val.push(v);
        }
    }
    CooGradient::from_sorted(idx, val)
}

/// The reduction-tree phase of gTopk: merge pairs with top-k re-selection until
/// rank 0 holds the final ≤k-sparse selection. Returns `Some` on rank 0, `None`
/// everywhere else.
///
/// Exposed separately so hierarchical schemes can run the tree *within a node
/// group* (leaving the result at the node leader) without paying for the
/// broadcast that [`gtopk_allreduce`] appends.
pub fn gtopk_reduce_to_root<C: Net>(
    comm: &mut C,
    local: CooGradient,
    k: usize,
) -> Option<CooGradient> {
    let p = comm.size();
    let rank = comm.rank();
    if p == 1 {
        return Some(reselect(&local, k));
    }

    let mut data = local;
    // Fold ranks beyond the largest power of two into the main tree first.
    // COO gradients travel as moved (indexes, values) pairs — the pooled wire
    // fast path — with identical 2k wire accounting; a sender's role in the
    // reduction ends at its send, so nothing needs cloning.
    let m = if p.is_power_of_two() { p } else { 1 << (usize::BITS - 1 - p.leading_zeros()) };
    if rank >= m {
        comm.send(rank - m, TAG_GTOPK, std::mem::take(&mut data).into_parts());
        return None;
    } else if rank + m < p {
        let (idx, val): (Vec<u32>, Vec<f32>) = comm.recv(rank + m, TAG_GTOPK);
        let got = CooGradient::from_sorted(idx, val);
        data = reselect(&data.merge_sum(&got), k);
    }

    // Binary reduction tree over the first m ranks.
    let mut dist = 1;
    while dist < m {
        if rank & (2 * dist - 1) == dist {
            comm.send(rank - dist, TAG_GTOPK, std::mem::take(&mut data).into_parts());
            return None; // this rank's role in the reduction is done
        } else if rank & (2 * dist - 1) == 0 {
            let (idx, val): (Vec<u32>, Vec<f32>) = comm.recv(rank + dist, TAG_GTOPK);
            let got = CooGradient::from_sorted(idx, val);
            data = reselect(&data.merge_sum(&got), k);
        }
        dist *= 2;
    }

    debug_assert_eq!(rank, 0);
    Some(data)
}

/// gTopk sparse allreduce: reduction tree with per-level top-k re-selection, then a
/// binomial broadcast of the result. Every rank returns the same ≤k-sparse gradient.
pub fn gtopk_allreduce<C: Net>(comm: &mut C, local: CooGradient, k: usize) -> CooGradient {
    comm.set_phase("gtopk");
    let root_value = gtopk_reduce_to_root(comm, local, k);
    // Broadcast the final selection from rank 0 to everyone (all P ranks).
    broadcast(comm, 0, root_value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};

    /// Serial emulation of the same tree (fold + binary reduction) for pow2 + fold.
    fn reference(locals: &[CooGradient], k: usize) -> CooGradient {
        let p = locals.len();
        let m = if p.is_power_of_two() {
            p
        } else {
            1 << (usize::BITS - 1 - p.leading_zeros() as u32) as usize
        };
        let mut layer: Vec<CooGradient> = locals[..m].to_vec();
        for r in m..p {
            layer[r - m] = reselect(&layer[r - m].merge_sum(&locals[r]), k);
        }
        let mut dist = 1;
        while dist < m {
            let mut i = 0;
            while i + dist < m {
                if i & (2 * dist - 1) == 0 {
                    layer[i] = reselect(&layer[i].merge_sum(&layer[i + dist]), k);
                }
                i += 2 * dist;
            }
            dist *= 2;
        }
        layer[0].clone()
    }

    fn random_locals(p: usize, n: usize, k: usize, seed: u64) -> Vec<CooGradient> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect()
    }

    #[test]
    fn matches_serial_tree_emulation() {
        for (p, seed) in [(2usize, 1u64), (4, 2), (8, 3), (16, 4), (3, 5), (6, 6), (12, 7)] {
            let (n, k) = (300, 24);
            let locals = random_locals(p, n, k, seed);
            let expect = reference(&locals, k);
            let report = Cluster::new(p, CostModel::aries())
                .run(|comm| gtopk_allreduce(comm, locals[comm.rank()].clone(), k));
            for got in &report.results {
                assert_eq!(got, &expect, "p={p}");
            }
        }
    }

    #[test]
    fn result_has_at_most_k_entries() {
        let (p, n, k) = (8, 500, 16);
        let locals = random_locals(p, n, k, 11);
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| gtopk_allreduce(comm, locals[comm.rank()].clone(), k));
        for got in &report.results {
            assert_eq!(got.nnz(), k);
        }
    }

    #[test]
    fn identical_supports_give_exact_sum() {
        // With fully overlapping supports, no information is discarded: the result
        // is the exact sparse sum.
        let p = 8;
        let base = CooGradient::from_sorted(vec![2, 7, 40], vec![0.5, -1.0, 2.0]);
        let locals: Vec<CooGradient> = (0..p).map(|_| base.clone()).collect();
        let report = Cluster::new(p, CostModel::free())
            .run(|comm| gtopk_allreduce(comm, locals[comm.rank()].clone(), 3));
        for got in &report.results {
            assert_eq!(got.indexes(), &[2, 7, 40]);
            assert_eq!(got.values(), &[4.0, -8.0, 16.0]);
        }
    }

    #[test]
    fn reselect_keeps_largest_magnitudes() {
        let g = CooGradient::from_sorted(vec![0, 1, 2, 3], vec![0.1, -5.0, 3.0, -0.2]);
        let r = reselect(&g, 2);
        assert_eq!(r.indexes(), &[1, 2]);
        assert_eq!(r.values(), &[-5.0, 3.0]);
    }

    #[test]
    fn volume_scales_with_log_p_not_p() {
        // Total traffic of gTopk is Θ(k·P) across the whole cluster (each rank
        // participates O(1) sends in the reduction + O(1) in the broadcast on
        // average), but the *critical path* per rank is O(k log P). Check total stays
        // linear in P while TopkA's is quadratic: at P=16 gTopk must move far less.
        let (n, k) = (4096, 64);
        let p = 16;
        let locals = random_locals(p, n, k, 13);
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            gtopk_allreduce(comm, locals[comm.rank()].clone(), k);
        });
        let total = report.ledger.total_elements();
        // Reduction: ≤ (P−1)·2k; broadcast: ≤ (P−1)·2k.
        assert!(total <= (2 * (p as u64 - 1)) * (2 * k as u64));
    }
}
