//! TopkDSA: SparCML's dynamic sparse allreduce (§2, \[36\]).
//!
//! Sparse reduce-scatter (recursive halving over the index space) followed by an
//! allgatherv of the owned chunks. The support of the partial sums grows with every
//! merge — the *fill-in* problem — so each message picks the cheaper wire format:
//! COO (`2·nnz` elements) or dense (`span` elements). When fill-in passes the
//! switch-over point the algorithm effectively degrades toward a dense allreduce,
//! which is the behaviour the paper measures in Fig. 12 and quantifies in §5.2
//! (output density expanding to 13.2% / 34.5%).

use crate::dense::allgather_items;
use simnet::{Net, WireSize};
use sparse::partition::equal_boundaries;
use sparse::CooGradient;

const TAG_DSA: u64 = 0x20;

/// Wire format of one reduce-scatter chunk: whichever of COO and dense is smaller.
#[derive(Clone, Debug)]
enum DsaMsg {
    Sparse(CooGradient),
    Dense { offset: u32, values: Vec<f32> },
}

impl WireSize for DsaMsg {
    fn wire_elems(&self) -> u64 {
        match self {
            DsaMsg::Sparse(g) => g.wire_elems(),
            // +1 for the offset word.
            DsaMsg::Dense { values, .. } => values.len() as u64 + 1,
        }
    }
}

impl DsaMsg {
    /// Encode a COO shard covering `[lo, hi)`, choosing the cheaper
    /// representation. Takes the shard by value: the sparse case moves it onto
    /// the wire without copying.
    fn encode(shard: CooGradient, lo: u32, hi: u32) -> Self {
        let span = (hi - lo) as usize;
        if 2 * shard.nnz() <= span {
            DsaMsg::Sparse(shard)
        } else {
            let mut values = vec![0.0f32; span];
            for (i, v) in shard.iter() {
                values[(i - lo) as usize] = v;
            }
            DsaMsg::Dense { offset: lo, values }
        }
    }

    /// Decode back to COO (lossless: a dense chunk's zeros carry no information).
    fn decode(self) -> CooGradient {
        match self {
            DsaMsg::Sparse(g) => g,
            DsaMsg::Dense { offset, values } => {
                let mut idx = Vec::new();
                let mut val = Vec::new();
                for (i, v) in values.into_iter().enumerate() {
                    if v != 0.0 {
                        idx.push(offset + i as u32);
                        val.push(v);
                    }
                }
                CooGradient::from_sorted(idx, val)
            }
        }
    }

    fn is_dense(&self) -> bool {
        matches!(self, DsaMsg::Dense { .. })
    }
}

/// Fill-in statistics of one TopkDSA invocation on one rank.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DsaStats {
    /// Nonzeros in the final (global) result.
    pub output_nnz: usize,
    /// `output_nnz / n` — the §5.2 density-expansion metric.
    pub output_density: f64,
    /// Largest nnz this rank held during the reduce-scatter.
    pub max_intermediate_nnz: usize,
    /// Whether any message fell back to the dense wire format.
    pub switched_dense: bool,
}

/// Result of a TopkDSA allreduce.
#[derive(Clone, Debug)]
pub struct DsaOutput {
    /// The reduced gradient (union support of all contributions).
    pub sum: CooGradient,
    /// Fill-in statistics of this invocation.
    pub stats: DsaStats,
}

/// SparCML-style dynamic sparse allreduce.
///
/// `n` is the dense gradient length (defines the index space). Power-of-two rank
/// counts use recursive halving; other sizes use a direct-exchange reduce-scatter
/// (same bandwidth, more messages), as noted in DESIGN.md.
pub fn dsa_allreduce<C: Net>(comm: &mut C, local: CooGradient, n: usize) -> DsaOutput {
    comm.set_phase("topk_dsa");
    let p = comm.size();
    if p == 1 {
        let nnz = local.nnz();
        return DsaOutput {
            sum: local,
            stats: DsaStats {
                output_nnz: nnz,
                output_density: nnz as f64 / n.max(1) as f64,
                max_intermediate_nnz: nnz,
                switched_dense: false,
            },
        };
    }
    let bounds = equal_boundaries(n as u32, p);
    let mut switched = false;
    let mut max_nnz = local.nnz();

    let (owned_region, owned) = if p.is_power_of_two() {
        recursive_halving(comm, local, &bounds, &mut switched, &mut max_nnz)
    } else {
        direct_exchange(comm, local, &bounds, &mut switched, &mut max_nnz)
    };

    // Allgatherv of owned chunks; again pick the cheaper wire format per chunk.
    let msg = DsaMsg::encode(owned, bounds[owned_region], bounds[owned_region + 1]);
    switched |= msg.is_dense();
    let all = allgather_items(comm, msg);
    let shards: Vec<CooGradient> = all.into_iter().map(DsaMsg::decode).collect();
    let sum = CooGradient::concat_ordered(&shards);
    let output_nnz = sum.nnz();
    max_nnz = max_nnz.max(output_nnz);
    DsaOutput {
        sum,
        stats: DsaStats {
            output_nnz,
            output_density: output_nnz as f64 / n.max(1) as f64,
            max_intermediate_nnz: max_nnz,
            switched_dense: switched,
        },
    }
}

/// Recursive-halving sparse reduce-scatter (power-of-two P). Returns the region index
/// this rank ends up owning and its fully reduced COO chunk.
fn recursive_halving<C: Net>(
    comm: &mut C,
    mut data: CooGradient,
    bounds: &[u32],
    switched: &mut bool,
    max_nnz: &mut usize,
) -> (usize, CooGradient) {
    let p = comm.size();
    let rank = comm.rank();
    let (mut seg_lo, mut seg_len) = (0usize, p);
    let mut dist = p / 2;
    while dist >= 1 {
        let partner = rank ^ dist;
        let mid = seg_lo + seg_len / 2;
        let (keep, give) = if rank & dist == 0 {
            ((seg_lo, mid), (mid, seg_lo + seg_len))
        } else {
            ((mid, seg_lo + seg_len), (seg_lo, mid))
        };
        // Split the current chunk at the keep/give boundary and move both
        // halves out (the give half goes straight onto the wire).
        let mut halves = data
            .split_by_boundaries(&[
                bounds[keep.0.min(give.0)],
                bounds[mid],
                bounds[keep.1.max(give.1)],
            ])
            .into_iter();
        let lower = halves.next().expect("two regions");
        let upper = halves.next().expect("two regions");
        let (keep_shard, give_shard) =
            if keep.0 < give.0 { (lower, upper) } else { (upper, lower) };
        let msg = DsaMsg::encode(give_shard, bounds[give.0], bounds[give.1]);
        *switched |= msg.is_dense();
        let got: DsaMsg = comm.sendrecv(partner, TAG_DSA, msg, partner, TAG_DSA);
        data = keep_shard.merge_sum(&got.decode());
        *max_nnz = (*max_nnz).max(data.nnz());
        seg_lo = keep.0;
        seg_len /= 2;
        dist /= 2;
    }
    (seg_lo, data)
}

/// Direct-exchange sparse reduce-scatter for arbitrary P: shard by region, send
/// region j to rank j (rotated), merge incoming shards of our own region.
fn direct_exchange<C: Net>(
    comm: &mut C,
    data: CooGradient,
    bounds: &[u32],
    switched: &mut bool,
    max_nnz: &mut usize,
) -> (usize, CooGradient) {
    let p = comm.size();
    let rank = comm.rank();
    let mut shards = data.split_by_boundaries(bounds);
    let mut mine = std::mem::take(&mut shards[rank]);
    for s in 1..p {
        let dst = (rank + s) % p;
        let msg = DsaMsg::encode(std::mem::take(&mut shards[dst]), bounds[dst], bounds[dst + 1]);
        *switched |= msg.is_dense();
        comm.send(dst, TAG_DSA, msg);
    }
    for s in 1..p {
        let src = (rank + p - s) % p;
        let got: DsaMsg = comm.recv(src, TAG_DSA);
        mine.merge_sum_into(&got.decode());
        *max_nnz = (*max_nnz).max(mine.nnz());
    }
    (rank, mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};
    use sparse::select::topk_exact;

    fn reference(locals: &[CooGradient]) -> CooGradient {
        let mut sum = CooGradient::new();
        for l in locals {
            sum.merge_sum_into(l);
        }
        sum
    }

    /// Same support, values equal up to f32 tree-reduction reassociation.
    fn assert_coo_close(a: &CooGradient, b: &CooGradient) {
        assert_eq!(a.indexes(), b.indexes());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    fn check(p: usize, n: usize, k: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let locals: Vec<CooGradient> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect();
        let expect = reference(&locals);
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| dsa_allreduce(comm, locals[comm.rank()].clone(), n));
        for out in &report.results {
            assert_coo_close(&out.sum, &expect);
            assert_eq!(out.stats.output_nnz, expect.nnz(), "p={p} n={n} k={k}");
        }
    }

    #[test]
    fn matches_reference_pow2() {
        check(2, 128, 16, 1);
        check(4, 200, 20, 2);
        check(8, 512, 30, 3);
        check(16, 1024, 10, 4);
    }

    #[test]
    fn matches_reference_non_pow2() {
        check(3, 100, 10, 5);
        check(6, 300, 25, 6);
    }

    #[test]
    fn dense_switchover_fires_at_high_density() {
        // k large relative to n: fill-in makes COO > dense quickly.
        let (p, n, k) = (8, 256, 100);
        let mut rng = StdRng::seed_from_u64(7);
        let locals: Vec<CooGradient> = (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(0.5f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect();
        let expect = reference(&locals);
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| dsa_allreduce(comm, locals[comm.rank()].clone(), n));
        for out in &report.results {
            assert_coo_close(&out.sum, &expect);
            assert!(out.stats.switched_dense, "expected dense switch-over");
            assert!(out.stats.output_density > 0.9);
        }
    }

    #[test]
    fn disjoint_supports_maximize_fill_in() {
        // Each rank selects a disjoint slice: output nnz = P·k (full fill-in).
        let (p, n, k) = (4, 400, 25);
        let locals: Vec<CooGradient> = (0..p)
            .map(|r| {
                let idx: Vec<u32> = (0..k as u32).map(|i| (r * 100) as u32 + i).collect();
                let val: Vec<f32> = (0..k).map(|i| 1.0 + i as f32).collect();
                CooGradient::from_sorted(idx, val)
            })
            .collect();
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| dsa_allreduce(comm, locals[comm.rank()].clone(), n));
        for out in &report.results {
            assert_eq!(out.stats.output_nnz, p * k);
        }
    }

    #[test]
    fn identical_supports_have_no_fill_in() {
        let (p, n) = (8, 1000);
        let base = CooGradient::from_sorted(vec![3, 500, 999], vec![1.0, -2.0, 0.5]);
        let locals: Vec<CooGradient> = (0..p).map(|_| base.clone()).collect();
        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| dsa_allreduce(comm, locals[comm.rank()].clone(), n));
        for out in &report.results {
            assert_eq!(out.stats.output_nnz, 3);
            assert_eq!(out.sum.values(), &[8.0, -16.0, 4.0]);
            assert!(!out.stats.switched_dense);
        }
    }

    #[test]
    fn single_rank_passthrough() {
        let g = CooGradient::from_sorted(vec![1, 2], vec![1.0, 2.0]);
        let report =
            Cluster::new(1, CostModel::free()).run(|comm| dsa_allreduce(comm, g.clone(), 10));
        assert_eq!(report.results[0].sum, g);
        assert_eq!(report.results[0].stats.output_density, 0.2);
    }
}
