#![warn(missing_docs)]

//! # collectives — dense and baseline sparse allreduce algorithms
//!
//! The communication substrate of the reproduction. Contains:
//!
//! - [`dense`]: Rabenseifner's allreduce (recursive-halving reduce-scatter +
//!   recursive-doubling allgather) with a ring fallback for non-power-of-two P,
//!   generic allgather/allgatherv, broadcast, and a small f64 allreduce used for
//!   Ok-Topk's boundary consensus. Dense allreduce achieves the `2n(P−1)/P`
//!   bandwidth bound quoted in Table 1.
//! - [`topk_a`]: the allgather-based sparse allreduce (TopkA, §2) — also the
//!   transport of the Gaussiank baseline, which differs only in its selection
//!   strategy (see `sparse::threshold::GaussianEstimator`).
//! - [`topk_dsa`]: SparCML's dynamic sparse allreduce (TopkDSA) — sparse
//!   reduce-scatter with fill-in and a switch-to-dense escape hatch, then allgatherv;
//!   fill-in statistics are reported so §5.2's density-expansion numbers can be
//!   reproduced.
//! - [`gtopk`]: the gTopk reduction-tree/broadcast-tree allreduce with hierarchical
//!   top-k re-selection at every level (`4k·log P` volume).
//! - [`hier`]: two-tier hierarchical variants (intra-node reduce → inter-node
//!   leader exchange → intra-node broadcast) that confine most traffic to the
//!   fast intra-node tier of a [`simnet::Topology`].
//!
//! All algorithms move real data over [`simnet`] and are tested against serial
//! references; their measured traffic (from the simnet ledger) is compared against
//! Table 1's analytic volumes in the `table1` harness.

pub mod dense;
pub mod gtopk;
pub mod hier;
pub mod quantized;
pub mod topk_a;
pub mod topk_dsa;

pub use dense::{
    allgather_items, allreduce_inplace, allreduce_overlapped, allreduce_sum_f64, alltoallv,
    broadcast, reduce_scatter_block,
};
pub use gtopk::{gtopk_allreduce, gtopk_reduce_to_root};
pub use hier::{hier_dense_allreduce, hier_gtopk_allreduce, ranks_per_node, reduce_to_root_dense};
pub use quantized::quantized_allgather_allreduce;
pub use topk_a::topk_allgather_allreduce;
pub use topk_dsa::{dsa_allreduce, DsaOutput, DsaStats};
