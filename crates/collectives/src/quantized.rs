//! Quantized sparse allreduce — the SparCML-style combination of sparsification
//! and quantization (\[36\], §2: "a combination of sparsification and quantization
//! is studied in SparCML").
//!
//! Same transport as TopkA (allgather + local reduction) but the sparse gradients
//! travel with 16- or 8-bit values, cutting the bandwidth term from `2k(P−1)` to
//! `1.5k(P−1)` / `1.25k(P−1)` at the price of bounded quantization noise, which
//! the residual mechanism absorbs like any other gradient noise.

use crate::dense::allgather_items;
use simnet::Net;
use sparse::quant::{QuantMode, QuantizedCoo};
use sparse::CooGradient;

/// Sparse allreduce with quantized values: quantize → allgather → dequantize →
/// local union-sum. The result carries each contribution's quantization error.
pub fn quantized_allgather_allreduce<C: Net>(
    comm: &mut C,
    local: CooGradient,
    mode: QuantMode,
) -> CooGradient {
    comm.set_phase("topk_a_quant");
    let q = QuantizedCoo::quantize(&local, mode);
    let all = allgather_items(comm, q);
    let dequantized: Vec<CooGradient> = all.iter().map(QuantizedCoo::dequantize).collect();
    CooGradient::merge_sum_many(&dequantized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_a::topk_allgather_allreduce;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};
    use sparse::select::topk_exact;

    fn locals(p: usize, n: usize, k: usize, seed: u64) -> Vec<CooGradient> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..p)
            .map(|_| {
                let dense: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                topk_exact(&dense, k)
            })
            .collect()
    }

    #[test]
    fn result_close_to_unquantized() {
        let (p, n, k) = (4, 512, 32);
        let ls = locals(p, n, k, 3);
        let exact = {
            let ls = ls.clone();
            Cluster::new(p, CostModel::free())
                .run(move |comm| topk_allgather_allreduce(comm, ls[comm.rank()].clone()))
                .results
                .remove(0)
        };
        for mode in [QuantMode::Q16, QuantMode::Q8] {
            let ls2 = ls.clone();
            let got = Cluster::new(p, CostModel::free())
                .run(move |comm| {
                    quantized_allgather_allreduce(comm, ls2[comm.rank()].clone(), mode)
                })
                .results
                .remove(0);
            assert_eq!(got.indexes(), exact.indexes());
            // Error ≤ P contributions × per-value quantization error.
            let tol = match mode {
                QuantMode::Q16 => 1e-3,
                QuantMode::Q8 => 5e-2,
            };
            for (a, b) in got.values().iter().zip(exact.values()) {
                assert!((a - b).abs() < tol * p as f32, "{mode:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn wire_volume_is_reduced() {
        let (p, n, k) = (8, 4096, 128);
        let ls = locals(p, n, k, 5);
        let volume = |q: Option<QuantMode>| -> u64 {
            let ls = ls.clone();
            let report = Cluster::new(p, CostModel::aries()).run(move |comm| match q {
                None => {
                    topk_allgather_allreduce(comm, ls[comm.rank()].clone());
                }
                Some(mode) => {
                    quantized_allgather_allreduce(comm, ls[comm.rank()].clone(), mode);
                }
            });
            report.ledger.total_elements()
        };
        let full = volume(None);
        let q16 = volume(Some(QuantMode::Q16));
        let q8 = volume(Some(QuantMode::Q8));
        // 2k → 1.5k → 1.25k per contribution (+1 scale word each).
        assert!((q16 as f64) < full as f64 * 0.78, "q16 {q16} vs full {full}");
        assert!((q8 as f64) < full as f64 * 0.66, "q8 {q8} vs full {full}");
        assert!(q8 < q16);
    }
}
