//! TopkA: the allgather-based sparse allreduce (§2, \[36, 47\]).
//!
//! Every worker contributes its local k-sparse gradient; an allgather distributes all
//! P sparse gradients to every worker, which then reduces them locally. Simple, no
//! fill-in *during* communication — but the per-rank receive volume is `2k(P−1)`,
//! proportional to P, which is exactly the scalability wall the paper demonstrates
//! (Figs. 8, 10, 12).
//!
//! The Gaussiank baseline uses this same transport; only its local selection
//! differs (Gaussian-PPF threshold instead of exact top-k).

use crate::dense::allgather_items;
use simnet::Net;
use sparse::CooGradient;

/// Sparse allreduce by allgather + local reduction.
///
/// Returns the merged sum of all workers' sparse contributions. The output density
/// is the union of the input supports (same fill-in as TopkDSA's result, §5.2); no
/// re-selection is applied here — callers decide what to do with the fill-in.
pub fn topk_allgather_allreduce<C: Net>(comm: &mut C, local: CooGradient) -> CooGradient {
    comm.set_phase("topk_a");
    let all = allgather_items(comm, local);
    CooGradient::merge_sum_many(&all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use simnet::{Cluster, CostModel};
    use sparse::select::topk_exact;

    fn random_dense(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn matches_serial_reference() {
        let (p, n, k) = (4, 200, 20);
        let mut rng = StdRng::seed_from_u64(9);
        let dense: Vec<Vec<f32>> = (0..p).map(|_| random_dense(n, &mut rng)).collect();
        let locals: Vec<CooGradient> = dense.iter().map(|d| topk_exact(d, k)).collect();

        let mut expect = CooGradient::new();
        for l in &locals {
            expect.merge_sum_into(l);
        }

        let report = Cluster::new(p, CostModel::aries())
            .run(|comm| topk_allgather_allreduce(comm, locals[comm.rank()].clone()));
        for got in &report.results {
            assert_eq!(got, &expect);
        }
    }

    #[test]
    fn volume_is_2k_p_minus_1_per_rank() {
        let (p, n, k) = (8, 4096, 64);
        let mut rng = StdRng::seed_from_u64(1);
        let dense: Vec<Vec<f32>> = (0..p).map(|_| random_dense(n, &mut rng)).collect();
        let locals: Vec<CooGradient> = dense.iter().map(|d| topk_exact(d, k)).collect();

        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            topk_allgather_allreduce(comm, locals[comm.rank()].clone());
        });
        // Every rank ends holding P sparse gradients of 2k elements each; total
        // traffic (send side, recursive doubling) equals receive side: 2k(P−1) per rank.
        let expected_total = (2 * k * (p - 1) * p) as u64;
        let total = report.ledger.total_elements();
        assert_eq!(total, expected_total);
    }

    #[test]
    fn overlapping_supports_merge() {
        // All ranks select the same indexes: result support stays k.
        let p = 4;
        let local = CooGradient::from_sorted(vec![1, 5, 9], vec![1.0, 2.0, 3.0]);
        let locals: Vec<CooGradient> = (0..p).map(|_| local.clone()).collect();
        let report = Cluster::new(p, CostModel::free())
            .run(|comm| topk_allgather_allreduce(comm, locals[comm.rank()].clone()));
        for got in &report.results {
            assert_eq!(got.indexes(), &[1, 5, 9]);
            assert_eq!(got.values(), &[4.0, 8.0, 12.0]);
        }
    }
}
