//! Property tests: every collective matches its serial reference on random inputs.

use collectives::{
    allgather_items, allreduce_inplace, broadcast, dsa_allreduce, gtopk_allreduce,
    topk_allgather_allreduce,
};
use proptest::prelude::*;
use simnet::{Cluster, CostModel};
use sparse::select::topk_exact;
use sparse::CooGradient;

fn coo_close(a: &CooGradient, b: &CooGradient) -> bool {
    a.indexes() == b.indexes()
        && a.values().iter().zip(b.values()).all(|(x, y)| (x - y).abs() <= 1e-4 * (1.0 + y.abs()))
}

fn inputs_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f32>>)> {
    (2usize..9, 8usize..120).prop_flat_map(|(p, n)| {
        (
            Just(p),
            proptest::collection::vec(
                proptest::collection::vec((-100i32..100).prop_map(|x| x as f32 * 0.01), n..=n),
                p..=p,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Dense allreduce equals the serial sum for every P (pow2 and not) and length.
    #[test]
    fn dense_allreduce_matches_serial((p, dense) in inputs_strategy()) {
        let mut expect = vec![0.0f32; dense[0].len()];
        for v in &dense {
            for (e, x) in expect.iter_mut().zip(v) {
                *e += x;
            }
        }
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mut d = dense[comm.rank()].clone();
            allreduce_inplace(comm, &mut d);
            d
        });
        for got in &report.results {
            for (g, e) in got.iter().zip(&expect) {
                prop_assert!((g - e).abs() <= 1e-4 * (1.0 + e.abs()));
            }
        }
    }

    /// TopkA equals the serial sparse union-sum; every rank agrees.
    #[test]
    fn topk_a_matches_serial((p, dense) in inputs_strategy(), k in 1usize..16) {
        let locals: Vec<CooGradient> = dense.iter().map(|d| topk_exact(d, k)).collect();
        let mut expect = CooGradient::new();
        for l in &locals {
            expect.merge_sum_into(l);
        }
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            topk_allgather_allreduce(comm, locals[comm.rank()].clone())
        });
        for got in &report.results {
            prop_assert!(coo_close(got, &expect));
        }
    }

    /// TopkDSA computes the same union-sum as TopkA (they differ only in schedule).
    #[test]
    fn dsa_matches_topk_a((p, dense) in inputs_strategy(), k in 1usize..16) {
        let n = dense[0].len();
        let locals: Vec<CooGradient> = dense.iter().map(|d| topk_exact(d, k)).collect();
        let mut expect = CooGradient::new();
        for l in &locals {
            expect.merge_sum_into(l);
        }
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            dsa_allreduce(comm, locals[comm.rank()].clone(), n)
        });
        // Compare as dense vectors: exact cancellations (a + (−a) = 0) may appear as
        // an explicit zero in the serial union but be dropped by DSA's dense wire
        // format — same vector, different support.
        let expect_dense = expect.to_dense(n);
        for out in &report.results {
            let got = out.sum.to_dense(n);
            for (g, e) in got.iter().zip(&expect_dense) {
                prop_assert!((g - e).abs() <= 1e-4 * (1.0 + e.abs()));
            }
            prop_assert!(out.stats.output_nnz <= expect.nnz());
        }
    }

    /// gTopk: all ranks agree, the result is ≤ k sparse, and its support is a subset
    /// of the union of the inputs' supports.
    #[test]
    fn gtopk_invariants((p, dense) in inputs_strategy(), k in 1usize..16) {
        let locals: Vec<CooGradient> = dense.iter().map(|d| topk_exact(d, k)).collect();
        let union: std::collections::HashSet<u32> = locals
            .iter()
            .flat_map(|g| g.indexes().iter().copied())
            .collect();
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            gtopk_allreduce(comm, locals[comm.rank()].clone(), k)
        });
        let first = &report.results[0];
        prop_assert!(first.nnz() <= k);
        for got in &report.results {
            prop_assert_eq!(got, first);
        }
        for (i, _) in first.iter() {
            prop_assert!(union.contains(&i));
        }
    }

    /// allgather/broadcast deliver intact data for any payload sizes.
    #[test]
    fn allgather_broadcast_roundtrip(p in 2usize..10, len in 0usize..40, root_sel in 0usize..10) {
        let root = root_sel % p;
        let report = Cluster::new(p, CostModel::aries()).run(|comm| {
            let mine: Vec<f32> = (0..len + comm.rank()).map(|i| i as f32).collect();
            let all = allgather_items(comm, mine);
            let b = if comm.rank() == root {
                broadcast(comm, root, Some(vec![comm.rank() as u32]))
            } else {
                broadcast::<_, Vec<u32>>(comm, root, None)
            };
            (all, b)
        });
        for (all, b) in &report.results {
            prop_assert_eq!(b, &vec![root as u32]);
            for (r, item) in all.iter().enumerate() {
                prop_assert_eq!(item.len(), len + r);
            }
        }
    }
}
