//! Steady-state allocation audit for the pooled dense-allreduce message path.
//!
//! A counting `#[global_allocator]` wraps the system allocator; a thread-local
//! flag arms the counter so only allocations made by one rank's thread are
//! charged. After a warm-up that fills the per-rank buffer pools (and lets the
//! channel blocks, ledger cells, and thread-locals come into existence), one
//! full ring-allreduce step on P = 3 ranks must perform **zero** heap
//! allocations on the armed rank: chunks come from the pool, payloads travel
//! as inline `Payload::F32` variants (no per-message boxing), and received
//! buffers are recycled back into the pool.
//!
//! The geometry is deliberate: P = 3 forces the ring path (non-power-of-two),
//! each rank sends `2(P−1) = 4` messages per iteration into a single
//! neighbour channel, and the measured iteration starts at message 21 — well
//! inside the channel's first 31-message block, so no block allocation can
//! land on the armed iteration. This file must stay a single-test binary so
//! no sibling test shares the armed thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use collectives::allreduce_inplace;
use simnet::{Cluster, CostModel};

struct CountingAlloc;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ARMED.with(|armed| {
            if armed.get() {
                ALLOCS.with(|c| c.set(c.get() + 1));
            }
        });
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_ring_allreduce_is_allocation_free() {
    const P: usize = 3; // non-power-of-two → ring algorithm
    const N: usize = 96; // divisible by P: equal chunks, stable pool capacities
    const WARMUP: usize = 5;

    let report = Cluster::new(P, CostModel::aries()).run(|comm| {
        // Touch the thread-locals while unarmed: the first TLS access on this
        // rank thread must not be charged to the measured iteration.
        ARMED.with(|a| a.set(false));
        ALLOCS.with(|c| c.set(0));

        let rank = comm.rank();
        let mut data: Vec<f32> = (0..N).map(|i| (rank * N + i) as f32 * 1e-3 + 1.0).collect();

        // Warm-up: fills the f32 buffer pool, creates the ledger cell and the
        // channel's first block, and parks/unparks the thread at least once.
        for _ in 0..WARMUP {
            allreduce_inplace(comm, &mut data);
        }

        // Armed phase: one more identical iteration. Every rank runs it (the
        // ring needs all participants), but only rank 0's thread is counted.
        if rank == 0 {
            ARMED.with(|a| a.set(true));
        }
        allreduce_inplace(comm, &mut data);
        ARMED.with(|a| a.set(false));

        let allocs = ALLOCS.with(|c| c.get());
        // Sanity: the measured iteration did real work (values grew ×P each
        // allreduce and stayed finite).
        let checksum: f32 = data.iter().sum();
        (allocs, checksum.is_finite() && checksum > 0.0)
    });

    let (allocs, sane) = report.results[0];
    assert!(sane, "measured iteration produced a degenerate result");
    assert_eq!(
        allocs, 0,
        "steady-state ring allreduce performed {allocs} heap allocations on rank 0"
    );
}
