//! Parallel/serial parity for the chunked dense kernels.
//!
//! `matmul_acc*_with_threads` partition the output (or, for `xt`, the inner
//! dimension) into disjoint blocks and keep the serial per-element accumulation
//! order inside each block, so results must be *bit-identical* to the serial
//! kernel for every thread count — including thread counts that do not divide
//! the partitioned dimension and counts (8, 17) oversubscribed beyond any
//! plausible core count. Every parallel call goes through the persistent
//! okpar worker pool.

use dnn::ops::{matmul_acc_with_threads, matmul_acc_wt_with_threads, matmul_acc_xt_with_threads};
use proptest::prelude::*;

const THREADS: [usize; 6] = [1, 2, 4, 7, 8, 17];

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Matrix entries with a healthy dose of exact zeros (the kernels skip
/// zero multiplicands, which must not perturb the accumulation order of the
/// surviving terms).
fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![-2.0f32..2.0f32, -2.0f32..2.0f32, -2.0f32..2.0f32, Just(0.0f32)],
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_acc_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, seed);
        let mut want = init.clone();
        matmul_acc_with_threads(&x, &w, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_with_threads(&x, &w, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn matmul_acc_wt_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (dy, w, init) = materialize(rows * cols, inner * cols, rows * inner, seed);
        let mut want = init.clone();
        matmul_acc_wt_with_threads(&dy, &w, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_wt_with_threads(&dy, &w, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn matmul_acc_xt_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (x, dy, init) = materialize(rows * inner, rows * cols, inner * cols, seed);
        let mut want = init.clone();
        matmul_acc_xt_with_threads(&x, &dy, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_xt_with_threads(&x, &dy, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn random_values_parity(
        a in mat(7 * 5),
        b in mat(5 * 3),
        init in mat(7 * 3),
    ) {
        // Proptest-drawn values (zeros included) through the forward kernel.
        let mut want = init.clone();
        matmul_acc_with_threads(&a, &b, &mut want, 7, 5, 3, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_with_threads(&a, &b, &mut got, 7, 5, 3, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }
}

/// Deterministic pseudo-random matrices (sin-based, ~20% exact zeros) so the
/// shape-sweep test below needs no RNG plumbing.
fn materialize(la: usize, lb: usize, lout: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let gen = |len: usize, salt: u64| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97 + salt) % 1000)
                    as f32
                    / 500.0)
                    - 1.0;
                if v.abs() < 0.2 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    };
    (gen(la, 1), gen(lb, 2), gen(lout, 3))
}

/// Shapes where the partitioned dimension is smaller than, equal to, and not a
/// multiple of the thread count.
#[test]
fn awkward_shapes_are_bit_identical() {
    for &threads in &THREADS {
        for &(rows, inner, cols) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 1),
            (3, 7, 2),
            (7, 13, 5),
            (8, 8, 8),
            (13, 4, 9),
            (17, 2, 3),
        ] {
            let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, 42);
            let mut want = init.clone();
            matmul_acc_with_threads(&x, &w, &mut want, rows, inner, cols, 1);
            let mut got = init.clone();
            matmul_acc_with_threads(&x, &w, &mut got, rows, inner, cols, threads);
            assert_eq!(got, want, "matmul_acc {rows}x{inner}x{cols} threads={threads}");

            let (dy, w2, init2) = materialize(rows * cols, inner * cols, rows * inner, 43);
            let mut want2 = init2.clone();
            matmul_acc_wt_with_threads(&dy, &w2, &mut want2, rows, inner, cols, 1);
            let mut got2 = init2.clone();
            matmul_acc_wt_with_threads(&dy, &w2, &mut got2, rows, inner, cols, threads);
            assert_eq!(got2, want2, "matmul_acc_wt {rows}x{inner}x{cols} threads={threads}");

            let (x3, dy3, init3) = materialize(rows * inner, rows * cols, inner * cols, 44);
            let mut want3 = init3.clone();
            matmul_acc_xt_with_threads(&x3, &dy3, &mut want3, rows, inner, cols, 1);
            let mut got3 = init3.clone();
            matmul_acc_xt_with_threads(&x3, &dy3, &mut got3, rows, inner, cols, threads);
            assert_eq!(got3, want3, "matmul_acc_xt {rows}x{inner}x{cols} threads={threads}");
        }
    }
}
