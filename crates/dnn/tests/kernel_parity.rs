//! Parallel/serial and SIMD/scalar parity for the chunked dense kernels.
//!
//! `matmul_acc*_with_threads` partition the output (or, for `xt`, the inner
//! dimension) into disjoint blocks and keep the serial per-element accumulation
//! order inside each block, so results must be *bit-identical* to the serial
//! kernel for every thread count — including thread counts that do not divide
//! the partitioned dimension and counts (8, 17) oversubscribed beyond any
//! plausible core count. Every parallel call goes through the persistent
//! okpar worker pool.
//!
//! The tiled/lane-vectorized kernels additionally promise bit-identity to the
//! *naive explicit loops* (ascending reduction index, zero-skip) at every SIMD
//! lane width — checked here against reference implementations written out
//! longhand, at widths {scalar, 4, 8} via the `*_with_lanes` surface.

use dnn::ops::{
    matmul_acc_with_lanes, matmul_acc_with_threads, matmul_acc_wt_with_threads,
    matmul_acc_xt_with_lanes, matmul_acc_xt_with_threads,
};
use proptest::prelude::*;
use sparse::simd::Lanes;

const THREADS: [usize; 6] = [1, 2, 4, 7, 8, 17];

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Matrix entries with a healthy dose of exact zeros (the kernels skip
/// zero multiplicands, which must not perturb the accumulation order of the
/// surviving terms).
fn mat(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![-2.0f32..2.0f32, -2.0f32..2.0f32, -2.0f32..2.0f32, Just(0.0f32)],
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_acc_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, seed);
        let mut want = init.clone();
        matmul_acc_with_threads(&x, &w, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_with_threads(&x, &w, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn matmul_acc_wt_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (dy, w, init) = materialize(rows * cols, inner * cols, rows * inner, seed);
        let mut want = init.clone();
        matmul_acc_wt_with_threads(&dy, &w, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_wt_with_threads(&dy, &w, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn matmul_acc_xt_parity(
        (rows, inner, cols) in (1usize..9, 1usize..9, 1usize..9),
        seed in 0u64..1000,
    ) {
        let (x, dy, init) = materialize(rows * inner, rows * cols, inner * cols, seed);
        let mut want = init.clone();
        matmul_acc_xt_with_threads(&x, &dy, &mut want, rows, inner, cols, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_xt_with_threads(&x, &dy, &mut got, rows, inner, cols, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }

    #[test]
    fn random_values_parity(
        a in mat(7 * 5),
        b in mat(5 * 3),
        init in mat(7 * 3),
    ) {
        // Proptest-drawn values (zeros included) through the forward kernel.
        let mut want = init.clone();
        matmul_acc_with_threads(&a, &b, &mut want, 7, 5, 3, 1);
        for threads in THREADS {
            let mut got = init.clone();
            matmul_acc_with_threads(&a, &b, &mut got, 7, 5, 3, threads);
            prop_assert_eq!(bits(&got), bits(&want), "threads={}", threads);
        }
    }
}

/// Naive ikj reference for `matmul_acc` — the exact loops the tiled kernel
/// must reproduce bit-for-bit (ascending `i`, zero-skip).
fn reference_matmul_acc(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for b in 0..rows {
        for i in 0..inner {
            let xv = x[b * inner + i];
            if xv == 0.0 {
                continue;
            }
            for j in 0..cols {
                out[b * cols + j] += xv * w[i * cols + j];
            }
        }
    }
}

/// Naive reference for `matmul_acc_xt` — batch-outer accumulation, zero-skip.
fn reference_matmul_acc_xt(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for b in 0..rows {
        for i in 0..inner {
            let xv = x[b * inner + i];
            if xv == 0.0 {
                continue;
            }
            for j in 0..cols {
                dw[i * cols + j] += xv * dy[b * cols + j];
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tiled_matmul_acc_matches_naive_reference_at_all_lane_widths(
        (rows, inner, cols) in (1usize..7, 1usize..80, 1usize..12),
        seed in 0u64..1000,
    ) {
        // `inner` ranges past KC=64 so the gather-block boundary is crossed.
        let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, seed);
        let mut want = init.clone();
        reference_matmul_acc(&x, &w, &mut want, rows, inner, cols);
        for lanes in Lanes::ALL {
            let mut got = init.clone();
            matmul_acc_with_lanes(&x, &w, &mut got, rows, inner, cols, lanes);
            prop_assert_eq!(bits(&got), bits(&want), "lanes={:?}", lanes);
        }
    }

    #[test]
    fn tiled_matmul_acc_xt_matches_naive_reference_at_all_lane_widths(
        (rows, inner, cols) in (1usize..80, 1usize..7, 1usize..12),
        seed in 0u64..1000,
    ) {
        // `rows` (the reduction dim here) ranges past KC=64.
        let (x, dy, init) = materialize(rows * inner, rows * cols, inner * cols, seed);
        let mut want = init.clone();
        reference_matmul_acc_xt(&x, &dy, &mut want, rows, inner, cols);
        for lanes in Lanes::ALL {
            let mut got = init.clone();
            matmul_acc_xt_with_lanes(&x, &dy, &mut got, rows, inner, cols, lanes);
            prop_assert_eq!(bits(&got), bits(&want), "lanes={:?}", lanes);
        }
    }

    #[test]
    fn register_tiled_matmul_acc_wt_matches_naive_dots(
        (rows, inner, cols) in (1usize..7, 1usize..40, 1usize..12),
        seed in 0u64..1000,
    ) {
        // The 4-way dot tile must reproduce each lone dot product exactly
        // (`inner` crosses the 4-output tile boundary at every remainder).
        let (dy, w, init) = materialize(rows * cols, inner * cols, rows * inner, seed);
        let mut want = init.clone();
        for b in 0..rows {
            for i in 0..inner {
                let mut acc = 0.0f32;
                for j in 0..cols {
                    acc += dy[b * cols + j] * w[i * cols + j];
                }
                want[b * inner + i] += acc;
            }
        }
        let mut got = init.clone();
        matmul_acc_wt_with_threads(&dy, &w, &mut got, rows, inner, cols, 1);
        prop_assert_eq!(bits(&got), bits(&want));
    }
}

/// Column counts straddling the NC=1024 panel boundary, at every lane width.
#[test]
fn panel_boundary_columns_match_reference() {
    for &(rows, inner, cols) in &[(2usize, 5usize, 1023usize), (1, 9, 1024), (2, 3, 1030)] {
        let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, 77);
        let mut want = init.clone();
        reference_matmul_acc(&x, &w, &mut want, rows, inner, cols);
        let (x2, dy2, init2) = materialize(rows * inner, rows * cols, inner * cols, 78);
        let mut want2 = init2.clone();
        reference_matmul_acc_xt(&x2, &dy2, &mut want2, rows, inner, cols);
        for lanes in Lanes::ALL {
            let mut got = init.clone();
            matmul_acc_with_lanes(&x, &w, &mut got, rows, inner, cols, lanes);
            assert_eq!(got, want, "matmul_acc {rows}x{inner}x{cols} lanes={lanes:?}");
            let mut got2 = init2.clone();
            matmul_acc_xt_with_lanes(&x2, &dy2, &mut got2, rows, inner, cols, lanes);
            assert_eq!(got2, want2, "matmul_acc_xt {rows}x{inner}x{cols} lanes={lanes:?}");
        }
    }
}

/// Deterministic pseudo-random matrices (sin-based, ~20% exact zeros) so the
/// shape-sweep test below needs no RNG plumbing.
fn materialize(la: usize, lb: usize, lout: usize, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let gen = |len: usize, salt: u64| -> Vec<f32> {
        (0..len)
            .map(|i| {
                let v = (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97 + salt) % 1000)
                    as f32
                    / 500.0)
                    - 1.0;
                if v.abs() < 0.2 {
                    0.0
                } else {
                    v
                }
            })
            .collect()
    };
    (gen(la, 1), gen(lb, 2), gen(lout, 3))
}

/// Shapes where the partitioned dimension is smaller than, equal to, and not a
/// multiple of the thread count.
#[test]
fn awkward_shapes_are_bit_identical() {
    for &threads in &THREADS {
        for &(rows, inner, cols) in &[
            (1usize, 1usize, 1usize),
            (2, 3, 1),
            (3, 7, 2),
            (7, 13, 5),
            (8, 8, 8),
            (13, 4, 9),
            (17, 2, 3),
        ] {
            let (x, w, init) = materialize(rows * inner, inner * cols, rows * cols, 42);
            let mut want = init.clone();
            matmul_acc_with_threads(&x, &w, &mut want, rows, inner, cols, 1);
            let mut got = init.clone();
            matmul_acc_with_threads(&x, &w, &mut got, rows, inner, cols, threads);
            assert_eq!(got, want, "matmul_acc {rows}x{inner}x{cols} threads={threads}");

            let (dy, w2, init2) = materialize(rows * cols, inner * cols, rows * inner, 43);
            let mut want2 = init2.clone();
            matmul_acc_wt_with_threads(&dy, &w2, &mut want2, rows, inner, cols, 1);
            let mut got2 = init2.clone();
            matmul_acc_wt_with_threads(&dy, &w2, &mut got2, rows, inner, cols, threads);
            assert_eq!(got2, want2, "matmul_acc_wt {rows}x{inner}x{cols} threads={threads}");

            let (x3, dy3, init3) = materialize(rows * inner, rows * cols, inner * cols, 44);
            let mut want3 = init3.clone();
            matmul_acc_xt_with_threads(&x3, &dy3, &mut want3, rows, inner, cols, 1);
            let mut got3 = init3.clone();
            matmul_acc_xt_with_threads(&x3, &dy3, &mut got3, rows, inner, cols, threads);
            assert_eq!(got3, want3, "matmul_acc_xt {rows}x{inner}x{cols} threads={threads}");
        }
    }
}
