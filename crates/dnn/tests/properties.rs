//! Property tests for the DL framework: gradient correctness across random layer
//! shapes, dataset determinism, optimizer invariants.

use dnn::data::{SyntheticImages, SyntheticMaskedLm, SyntheticSequences};
use dnn::layers::Linear;
use dnn::ops::{softmax_xent, IGNORE};
use dnn::optim::{Adam, Sgd};
use dnn::Arena;
use proptest::prelude::*;
use rand::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Linear-layer parameter gradients match numerical gradients for any shape.
    #[test]
    fn linear_gradcheck_any_shape(
        in_dim in 1usize..6,
        out_dim in 2usize..6,
        batch in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new(&mut arena, &mut rng, in_dim, out_dim);
        let x: Vec<f32> = (0..batch * in_dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let targets: Vec<u32> = (0..batch).map(|_| rng.gen_range(0..out_dim as u32)).collect();

        let y = lin.forward(&arena, &x, batch);
        let mut dl = vec![0.0f32; y.len()];
        softmax_xent(&y, &targets, &mut dl, batch, out_dim, 1.0);
        arena.zero_grads();
        lin.backward(&mut arena, &x, &dl, batch);
        let analytic = arena.grads().to_vec();

        let eps = 1e-2f32;
        for i in 0..arena.len() {
            let orig = arena.params()[i];
            arena.params_mut()[i] = orig + eps;
            let yp = lin.forward(&arena, &x, batch);
            let mut s = vec![0.0f32; yp.len()];
            let fp = softmax_xent(&yp, &targets, &mut s, batch, out_dim, 1.0).0;
            arena.params_mut()[i] = orig - eps;
            let ym = lin.forward(&arena, &x, batch);
            let fm = softmax_xent(&ym, &targets, &mut s, batch, out_dim, 1.0).0;
            arena.params_mut()[i] = orig;
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            prop_assert!((num - analytic[i]).abs() < 3e-2 * 1.0f32.max(num.abs()),
                "param {}: {} vs {}", i, num, analytic[i]);
        }
    }

    /// Datasets are pure functions of (iter, rank, world, batch) and shards from
    /// different ranks never alias.
    #[test]
    fn datasets_deterministic_and_disjoint(seed in 0u64..500, iter in 0u64..50) {
        let img = SyntheticImages::new(seed);
        let a = img.train_batch(iter, 0, 4, 4);
        let b = img.train_batch(iter, 0, 4, 4);
        prop_assert_eq!(&a.pixels, &b.pixels);
        let c = img.train_batch(iter, 3, 4, 4);
        prop_assert_ne!(&a.pixels, &c.pixels);

        let seqs = SyntheticSequences::new(seed);
        let s1 = seqs.train_batch(iter, 1, 4, 4);
        let s2 = seqs.train_batch(iter, 1, 4, 4);
        prop_assert_eq!(&s1.tokens, &s2.tokens);

        let mlm = SyntheticMaskedLm::new(seed);
        let m1 = mlm.train_batch(iter, 2, 4, 4);
        // Scored positions are masked in the input; everything else is not.
        for (t, &tg) in m1.tokens.iter().zip(&m1.targets) {
            if tg != IGNORE {
                prop_assert_eq!(*t, mlm.mask_token());
            } else {
                prop_assert_ne!(*t, mlm.mask_token());
            }
        }
    }

    /// SGD with momentum 0 is exactly `w -= lr·g` for any inputs.
    #[test]
    fn sgd_plain_update(
        w0 in proptest::collection::vec(-10.0f32..10.0, 1..20),
        lr in 0.001f32..1.0,
    ) {
        let g: Vec<f32> = w0.iter().map(|v| v * 0.5 + 1.0).collect();
        let mut w = w0.clone();
        let mut opt = Sgd::new(lr, 0.0, w.len());
        opt.step(&mut w, &g);
        for i in 0..w.len() {
            prop_assert!((w[i] - (w0[i] - lr * g[i])).abs() < 1e-6);
        }
    }

    /// Sparse Adam on the full support equals dense Adam, step by step.
    #[test]
    fn sparse_adam_equals_dense_on_full_support(
        n in 1usize..12,
        steps in 1usize..5,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx: Vec<u32> = (0..n as u32).collect();
        let mut dense = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.005, n);
        let mut sparse = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.005, n);
        let mut wd: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut ws = wd.clone();
        for _ in 0..steps {
            let g: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            dense.step(&mut wd, &g);
            sparse.step_sparse(&mut ws, &idx, &g);
        }
        for (a, b) in wd.iter().zip(&ws) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
