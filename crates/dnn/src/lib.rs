#![warn(missing_docs)]

//! # dnn — a minimal deep-learning framework for the Ok-Topk reproduction
//!
//! The paper trains three models (VGG-16, an LSTM, BERT) with PyTorch on GPUs. This
//! crate is the CPU substitute: a small but genuine deep-learning stack whose job is
//! to produce *real gradients* — with the heavy-tailed, slowly drifting value
//! distributions the paper's threshold-reuse strategy (§3.1.3) depends on — and real
//! convergence curves for the §5.4 case studies.
//!
//! Design choices aimed at distributed training:
//!
//! - **Flat parameter arena** ([`Arena`]): all parameters live in one contiguous
//!   `Vec<f32>` and all gradients in another, so the whole model gradient is a single
//!   dense slice — exactly what an allreduce (dense or sparse) consumes. Layers hold
//!   [`Slot`]s (offset + length) into the arena.
//! - **Explicit backward passes** (no autograd tape): each layer implements
//!   `forward`/`backward` with caller-held activations; every backward is verified
//!   against numerical gradients in tests.
//! - **Seeded determinism**: identical seeds give identical init and identical
//!   batches, which is how P data-parallel replicas start from the same model.
//!
//! Models: [`models::VggLite`] (conv stack, image classification),
//! [`models::LstmNet`] (LSTM sequence model with a per-token error-rate metric, the
//! WER stand-in), [`models::BertLite`] (transformer encoder with masked-token
//! prediction). Synthetic datasets with learnable structure live in [`data`].

pub mod arena;
pub mod data;
pub mod layers;
pub mod model;
pub mod models;
pub mod ops;
pub mod optim;

pub use arena::{Arena, Slot};
pub use model::{EvalStats, Model, TrainStats};
