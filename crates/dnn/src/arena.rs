//! Flat parameter/gradient storage shared by all layers of a model.

use rand::prelude::*;

/// A layer's view into the arena: `len` consecutive f32s starting at `offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slot {
    /// First element of the slot in the arena.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl Slot {
    fn range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.len
    }
}

/// Contiguous parameter and gradient storage.
///
/// Keeping the whole model in two flat vectors makes the gradient a single dense
/// slice, which is what every allreduce variant in this workspace consumes, and
/// makes "apply this sparse update to the model" a scatter.
#[derive(Clone, Debug, Default)]
pub struct Arena {
    params: Vec<f32>,
    grads: Vec<f32>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `len` parameters initialized by `init` (called once per element).
    pub fn alloc_with(&mut self, len: usize, mut init: impl FnMut() -> f32) -> Slot {
        let offset = self.params.len();
        self.params.extend(std::iter::repeat_with(&mut init).take(len));
        self.grads.resize(self.params.len(), 0.0);
        Slot { offset, len }
    }

    /// Allocate `len` zero-initialized parameters (biases).
    pub fn alloc_zeros(&mut self, len: usize) -> Slot {
        self.alloc_with(len, || 0.0)
    }

    /// Allocate with uniform init in `[-bound, bound]` (Kaiming/Xavier-style bounds
    /// are computed by the layers).
    pub fn alloc_uniform(&mut self, len: usize, bound: f32, rng: &mut StdRng) -> Slot {
        self.alloc_with(len, || rng.gen_range(-bound..=bound))
    }

    /// Total number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the arena holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parameters of one slot.
    pub fn p(&self, s: Slot) -> &[f32] {
        &self.params[s.range()]
    }

    /// Gradients of one slot.
    pub fn g(&self, s: Slot) -> &[f32] {
        &self.grads[s.range()]
    }

    /// Simultaneous read-params / write-grads views of one slot — the shape every
    /// backward pass needs.
    pub fn pg_mut(&mut self, s: Slot) -> (&[f32], &mut [f32]) {
        (&self.params[s.range()], &mut self.grads[s.range()])
    }

    /// The entire parameter vector (for the optimizer / allreduce).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable view of the entire parameter vector.
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// The entire gradient vector.
    pub fn grads(&self) -> &[f32] {
        &self.grads
    }

    /// Mutable view of the entire gradient vector.
    pub fn grads_mut(&mut self) -> &mut [f32] {
        &mut self.grads
    }

    /// Reset all gradients to zero.
    pub fn zero_grads(&mut self) {
        self.grads.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_disjoint_and_ordered() {
        let mut a = Arena::new();
        let s1 = a.alloc_zeros(3);
        let s2 = a.alloc_with(2, || 1.5);
        assert_eq!(s1, Slot { offset: 0, len: 3 });
        assert_eq!(s2, Slot { offset: 3, len: 2 });
        assert_eq!(a.len(), 5);
        assert_eq!(a.p(s2), &[1.5, 1.5]);
        assert_eq!(a.p(s1), &[0.0; 3]);
    }

    #[test]
    fn pg_mut_allows_read_write() {
        let mut a = Arena::new();
        let s = a.alloc_with(2, || 2.0);
        {
            let (p, g) = a.pg_mut(s);
            g[0] = p[0] * 3.0;
            g[1] = p[1] * 4.0;
        }
        assert_eq!(a.g(s), &[6.0, 8.0]);
        a.zero_grads();
        assert_eq!(a.g(s), &[0.0, 0.0]);
    }

    #[test]
    fn uniform_init_respects_bounds_and_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut a1 = Arena::new();
        let mut a2 = Arena::new();
        let s1 = a1.alloc_uniform(100, 0.25, &mut r1);
        let s2 = a2.alloc_uniform(100, 0.25, &mut r2);
        assert_eq!(a1.p(s1), a2.p(s2));
        assert!(a1.p(s1).iter().all(|v| v.abs() <= 0.25));
    }
}
