//! Optimizers: SGD with momentum and Adam (dense + sparse application).
//!
//! Matching the paper's recipes (§5): SGD for VGG and LSTM, Adam for BERT, where
//! the sparse allreduce runs on raw gradients and Adam is applied afterwards — on
//! the global top-k support only ([`Adam::step_sparse`], lazy sparse Adam).

/// SGD with (optional) momentum. `velocity` persists across steps.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// New optimizer for `n` parameters.
    pub fn new(lr: f32, momentum: f32, n: usize) -> Self {
        Self { lr, momentum, velocity: vec![0.0; n] }
    }

    /// Dense step: `v ← μv + g; w ← w − lr·v`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        if self.momentum == 0.0 {
            for (w, &g) in params.iter_mut().zip(grads) {
                *w -= self.lr * g;
            }
            return;
        }
        for ((w, v), &g) in params.iter_mut().zip(&mut self.velocity).zip(grads) {
            *v = self.momentum * *v + g;
            *w -= self.lr * *v;
        }
    }

    /// The momentum buffer (for checkpointing).
    pub fn velocity(&self) -> &[f32] {
        &self.velocity
    }

    /// Restore the momentum buffer from a checkpoint.
    pub fn set_velocity(&mut self, v: Vec<f32>) {
        assert_eq!(v.len(), self.velocity.len());
        self.velocity = v;
    }
}

/// Adam with decoupled weight decay (AdamW-style), supporting sparse gradients.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Base learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Denominator stabilizer ε.
    pub eps: f32,
    /// Decoupled (AdamW-style) weight decay.
    pub weight_decay: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// The paper's BERT hyperparameters: lr 2e-4, β₁ 0.9, β₂ 0.999, wd 0.01.
    pub fn bert_default(n: usize) -> Self {
        Self::new(2e-4, 0.9, 0.999, 1e-8, 0.01, n)
    }

    /// New optimizer for `n` parameters.
    pub fn new(lr: f32, beta1: f32, beta2: f32, eps: f32, weight_decay: f32, n: usize) -> Self {
        Self { lr, beta1, beta2, eps, weight_decay, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Override the base learning rate (for schedules; the effective rate also
    /// includes bias correction).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn bias_corrected_lr(&self) -> f32 {
        let t = self.t as f32;
        self.lr * (1.0 - self.beta2.powf(t)).sqrt() / (1.0 - self.beta1.powf(t))
    }

    /// Dense Adam step.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        debug_assert_eq!(params.len(), grads.len());
        self.t += 1;
        let alpha = self.bias_corrected_lr();
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            params[i] -= alpha * self.m[i] / (self.v[i].sqrt() + self.eps)
                + self.lr * self.weight_decay * params[i];
        }
    }

    /// The optimizer state `(m, v, t)` (for checkpointing).
    pub fn state(&self) -> (&[f32], &[f32], u64) {
        (&self.m, &self.v, self.t)
    }

    /// Restore the optimizer state from a checkpoint.
    pub fn set_state(&mut self, m: Vec<f32>, v: Vec<f32>, t: u64) {
        assert_eq!(m.len(), self.m.len());
        assert_eq!(v.len(), self.v.len());
        self.m = m;
        self.v = v;
        self.t = t;
    }

    /// Lazy sparse Adam: update moments and weights only at the given indexes
    /// (the global top-k support). Used in the paper's BERT recipe where Adam runs
    /// on the sparse-allreduced gradient.
    pub fn step_sparse(&mut self, params: &mut [f32], indexes: &[u32], values: &[f32]) {
        debug_assert_eq!(indexes.len(), values.len());
        self.t += 1;
        let alpha = self.bias_corrected_lr();
        for (&iu, &g) in indexes.iter().zip(values) {
            let i = iu as usize;
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            params[i] -= alpha * self.m[i] / (self.v[i].sqrt() + self.eps)
                + self.lr * self.weight_decay * params[i];
        }
    }
}

/// Learning-rate schedules (the paper uses diminishing rates for SGD — required by
/// Theorem 4.1 — and linear decay for BERT's Adam).
#[derive(Clone, Copy, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant,
    /// `lr / (1 + t/t0)` — the "simply diminishing" schedule of §5.4.1.
    InverseDecay {
        /// Decay time constant (iterations until the rate halves).
        t0: f32,
    },
    /// Linear decay to zero over `total` iterations (the BERT recipe).
    Linear {
        /// Total training iterations.
        total: usize,
    },
    /// Linear warmup over `warmup` iterations, then inverse decay.
    WarmupInverse {
        /// Warmup iterations.
        warmup: usize,
        /// Decay time constant after warmup.
        t0: f32,
    },
}

impl LrSchedule {
    /// The rate multiplier at (1-based) iteration `t`; multiply by the base lr.
    pub fn factor(&self, t: usize) -> f32 {
        match self {
            LrSchedule::Constant => 1.0,
            LrSchedule::InverseDecay { t0 } => 1.0 / (1.0 + t as f32 / t0),
            LrSchedule::Linear { total } => {
                (1.0 - (t as f32 - 1.0) / (*total).max(1) as f32).max(0.0)
            }
            LrSchedule::WarmupInverse { warmup, t0 } => {
                if t <= *warmup {
                    t as f32 / (*warmup).max(1) as f32
                } else {
                    1.0 / (1.0 + (t - warmup) as f32 / t0)
                }
            }
        }
    }
}

/// Global-norm gradient clipping: if `‖g‖₂ > max_norm`, scale `g` down to the
/// threshold. Returns the pre-clip norm. Standard practice for RNN/transformer
/// training; exposed for the LSTM and BERT recipes.
pub fn clip_grad_norm(grads: &mut [f32], max_norm: f32) -> f64 {
    let norm = grads.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>().sqrt();
    if norm > max_norm as f64 && norm > 0.0 {
        let scale = (max_norm as f64 / norm) as f32;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_have_expected_shapes() {
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
        let inv = LrSchedule::InverseDecay { t0: 10.0 };
        assert_eq!(inv.factor(10), 0.5);
        assert!(inv.factor(100) < inv.factor(10));
        let lin = LrSchedule::Linear { total: 100 };
        assert_eq!(lin.factor(1), 1.0);
        assert!((lin.factor(51) - 0.5).abs() < 1e-6);
        assert_eq!(lin.factor(101), 0.0);
        assert_eq!(lin.factor(9999), 0.0); // clamped, never negative
        let wu = LrSchedule::WarmupInverse { warmup: 10, t0: 50.0 };
        assert!(wu.factor(1) < wu.factor(10));
        assert_eq!(wu.factor(10), 1.0);
        assert!(wu.factor(100) < 1.0);
    }

    #[test]
    fn clipping_preserves_direction_and_caps_norm() {
        let mut g = vec![3.0f32, 4.0]; // norm 5
        let pre = clip_grad_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-9);
        let post: f64 = g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6); // direction preserved

        // Below the threshold: untouched.
        let mut h = vec![0.1f32, 0.2];
        clip_grad_norm(&mut h, 10.0);
        assert_eq!(h, vec![0.1, 0.2]);

        // Zero gradient: no NaNs.
        let mut z = vec![0.0f32; 4];
        assert_eq!(clip_grad_norm(&mut z, 1.0), 0.0);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut opt = Sgd::new(0.1, 0.0, 2);
        let mut w = vec![1.0f32, -1.0];
        opt.step(&mut w, &[0.5, -0.5]);
        assert_eq!(w, vec![0.95, -0.95]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.9, 1);
        let mut w = vec![0.0f32];
        opt.step(&mut w, &[1.0]); // v=1, w=-0.1
        opt.step(&mut w, &[1.0]); // v=1.9, w=-0.29
        assert!((w[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(0.05, 0.9, 0.999, 1e-8, 0.0, 1);
        let mut w = vec![3.0f32];
        for _ in 0..500 {
            let g = w[0]; // d(w²/2)
            opt.step(&mut w, &[g]);
        }
        assert!(w[0].abs() < 0.05, "w={}", w[0]);
    }

    #[test]
    fn sparse_adam_touches_only_given_indexes() {
        let mut opt = Adam::new(0.1, 0.9, 0.999, 1e-8, 0.0, 4);
        let mut w = vec![1.0f32, 2.0, 3.0, 4.0];
        opt.step_sparse(&mut w, &[1, 3], &[0.5, -0.5]);
        assert_eq!(w[0], 1.0);
        assert_eq!(w[2], 3.0);
        assert!(w[1] < 2.0);
        assert!(w[3] > 4.0);
    }

    #[test]
    fn sparse_and_dense_agree_on_full_support() {
        let n = 4;
        let grads = vec![0.3f32, -0.2, 0.9, 0.0];
        let idx: Vec<u32> = (0..n as u32).collect();
        let mut dense = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.01, n);
        let mut sparse = Adam::new(0.01, 0.9, 0.999, 1e-8, 0.01, n);
        let mut wd = vec![1.0f32; n];
        let mut ws = vec![1.0f32; n];
        for _ in 0..3 {
            dense.step(&mut wd, &grads);
            sparse.step_sparse(&mut ws, &idx, &grads);
        }
        for (a, b) in wd.iter().zip(&ws) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
