//! Dense kernels: matmul, bias, activations, softmax cross-entropy.
//!
//! All kernels operate on row-major `[rows, cols]` slices.
//!
//! The three matmul kernels carry the forward/backward flops and are blocked,
//! register-tiled, and lane-vectorized:
//!
//! - [`matmul_acc`] and [`matmul_acc_xt`] gather the nonzero multipliers of
//!   each [`KC`]-wide reduction block (ReLU activations make many of them
//!   zero), then stream [`NC`]-wide output panels through the
//!   [`sparse::simd::axpy4`] microkernel — four fused row-updates per pass,
//!   one load/store of the output per element instead of four.
//! - [`matmul_acc_wt`] computes four dot products at once over shared loads of
//!   the `dy` row (a 4-way register tile of independent scalar accumulator
//!   chains). It is deliberately *not* lane-vectorized: splitting one dot
//!   product across lanes would reassociate the f32 sum; four independent
//!   chains give the ILP without touching any accumulation order.
//!
//! Every tiling decision preserves the exact per-element operation sequence of
//! the naive ikj loops (ascending reduction index, zero-skip included), so the
//! results are **bit-identical** to the scalar reference at every lane width —
//! asserted by the `kernel_parity` proptest suite against an explicit-loop
//! reference implementation.
//!
//! The kernels are also data-parallel: the public entry points dispatch chunked
//! workers through the persistent `okpar` pool ([`okpar::run_chunks`] over
//! partitions of the *output* space) — no threads are spawned per call, and
//! SIMD composes with the chunking (lanes inside each worker's panel walk).
//! The thread count adapts to the problem: one worker per
//! [`MATMUL_GRAIN_FLOPS`] multiply-accumulates, capped at
//! [`okpar::configured_threads`] (the `OKTOPK_THREADS` knob), so small matmuls
//! stay serial with zero dispatch overhead. Because each worker owns a disjoint
//! slice of the output and walks it in the same order as the serial loop, the
//! result is bit-identical to the serial kernel for any thread count. The
//! `*_with_threads` variants take the thread count explicitly (no size gate)
//! for tests and benches, which must not race on the process-global knob; the
//! `*_with_lanes` variants force the SIMD width the same way.

use okpar::SendPtr;
use sparse::simd::{self, Lanes};

/// Multiply-accumulate count per worker chunk — the matmul granularity cutoff.
/// One worker per this many MACs (so problems under twice this stay serial);
/// calibrated so a chunk's arithmetic (tens of µs) dwarfs the ~1µs pool
/// dispatch.
pub const MATMUL_GRAIN_FLOPS: usize = 1 << 15;

/// Reduction-block width for the nonzero gather in [`matmul_acc`] /
/// [`matmul_acc_xt`]: the `(index, multiplier)` pairs of one block fit in two
/// stack arrays (512 B) and the gathered run feeds the 4-row microkernel.
pub const KC: usize = 64;

/// Output-panel width (f32 elements) for the cache-blocked column walk: one
/// panel of the output row plus four source rows stay L1-resident (20 KiB).
pub const NC: usize = 1024;

fn matmul_threads(rows: usize, inner: usize, cols: usize) -> usize {
    okpar::threads_for(rows.saturating_mul(inner).saturating_mul(cols), MATMUL_GRAIN_FLOPS)
}

/// `out[b, j] += Σᵢ x[b, i] · w[i, j]` — x: `[rows, inner]`, w: `[inner, cols]`.
pub fn matmul_acc(x: &[f32], w: &[f32], out: &mut [f32], rows: usize, inner: usize, cols: usize) {
    matmul_acc_with_threads(x, w, out, rows, inner, cols, matmul_threads(rows, inner, cols));
}

/// [`matmul_acc`] with an explicit thread count; bit-identical for any `threads`.
pub fn matmul_acc_with_threads(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    threads: usize,
) {
    debug_assert_eq!(x.len(), rows * inner);
    debug_assert_eq!(w.len(), inner * cols);
    debug_assert_eq!(out.len(), rows * cols);
    if okpar::chunk_count(rows, threads) <= 1 {
        return matmul_acc_rows(x, w, out, rows, inner, cols, simd::lanes());
    }
    let lanes = simd::lanes();
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    okpar::run_chunks(rows, threads, |_, r| {
        // Safety: chunk row-ranges are disjoint, so the output row blocks are.
        let op = unsafe { out_ptr.slice_mut(r.start * cols, r.len() * cols) };
        matmul_acc_rows(&x[r.start * inner..r.end * inner], w, op, r.len(), inner, cols, lanes);
    });
}

/// [`matmul_acc`] serial at a forced SIMD width (the lane-parity test surface);
/// bit-identical to the auto path for every `lanes`.
pub fn matmul_acc_with_lanes(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    lanes: Lanes,
) {
    debug_assert_eq!(x.len(), rows * inner);
    debug_assert_eq!(w.len(), inner * cols);
    debug_assert_eq!(out.len(), rows * cols);
    matmul_acc_rows(x, w, out, rows, inner, cols, lanes);
}

/// Tiled row-range worker for [`matmul_acc`]: gather the nonzero `(i, x[b,i])`
/// pairs of each [`KC`] block, then run the gathered quads through the
/// [`simd::axpy4`] microkernel over [`NC`]-wide panels of the output row.
/// Per output element the reduction order is ascending `i` with zero-skip —
/// exactly the naive ikj loop, hence bit-identical.
fn matmul_acc_rows(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    lanes: Lanes,
) {
    let mut idxs = [0usize; KC];
    let mut vals = [0f32; KC];
    for b in 0..rows {
        let xb = &x[b * inner..(b + 1) * inner];
        let ob = &mut out[b * cols..(b + 1) * cols];
        for bs in (0..inner).step_by(KC) {
            let be = (bs + KC).min(inner);
            let mut m = 0usize;
            for (i, &xv) in xb[bs..be].iter().enumerate() {
                if xv != 0.0 {
                    // Gather survivors only: the quad kernel must never inject
                    // an `+= 0.0·w` term the scalar loop skipped (common after
                    // ReLU, and adding 0.0 is not a bitwise no-op for -0.0).
                    idxs[m] = bs + i;
                    vals[m] = xv;
                    m += 1;
                }
            }
            if m == 0 {
                continue;
            }
            for jp in (0..cols).step_by(NC) {
                let je = (jp + NC).min(cols);
                let op = &mut ob[jp..je];
                let mut q = 0usize;
                while q + 4 <= m {
                    let rows4 = [
                        &w[idxs[q] * cols + jp..idxs[q] * cols + je],
                        &w[idxs[q + 1] * cols + jp..idxs[q + 1] * cols + je],
                        &w[idxs[q + 2] * cols + jp..idxs[q + 2] * cols + je],
                        &w[idxs[q + 3] * cols + jp..idxs[q + 3] * cols + je],
                    ];
                    let a = [vals[q], vals[q + 1], vals[q + 2], vals[q + 3]];
                    simd::axpy4_with_lanes(op, rows4, a, lanes);
                    q += 4;
                }
                while q < m {
                    let wrow = &w[idxs[q] * cols + jp..idxs[q] * cols + je];
                    simd::axpy_with_lanes(op, wrow, vals[q], lanes);
                    q += 1;
                }
            }
        }
    }
}

/// `out[b, i] += Σⱼ dy[b, j] · w[i, j]` — gradient w.r.t. the input of a matmul
/// (dy: `[rows, cols]`, w: `[inner, cols]`, out: `[rows, inner]`).
pub fn matmul_acc_wt(
    dy: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    matmul_acc_wt_with_threads(dy, w, out, rows, inner, cols, matmul_threads(rows, inner, cols));
}

/// [`matmul_acc_wt`] with an explicit thread count; bit-identical for any `threads`.
pub fn matmul_acc_wt_with_threads(
    dy: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    threads: usize,
) {
    debug_assert_eq!(dy.len(), rows * cols);
    debug_assert_eq!(w.len(), inner * cols);
    debug_assert_eq!(out.len(), rows * inner);
    if okpar::chunk_count(rows, threads) <= 1 {
        return matmul_acc_wt_rows(dy, w, out, rows, inner, cols);
    }
    let out_ptr = SendPtr::new(out.as_mut_ptr());
    okpar::run_chunks(rows, threads, |_, r| {
        // Safety: chunk row-ranges are disjoint, so the output row blocks are.
        let op = unsafe { out_ptr.slice_mut(r.start * inner, r.len() * inner) };
        matmul_acc_wt_rows(&dy[r.start * cols..r.end * cols], w, op, r.len(), inner, cols);
    });
}

/// Four dot products against a shared left vector, as four *independent*
/// scalar accumulator chains walking `j` in ascending order. This is register
/// tiling without lane vectorization: each accumulator sees the exact f32
/// operation sequence of a lone serial dot product (no reassociation), while
/// the four chains give the core ILP and amortize the `d` loads 4×.
#[inline]
fn dot4(d: &[f32], w0: &[f32], w1: &[f32], w2: &[f32], w3: &[f32]) -> [f32; 4] {
    let mut a = [0.0f32; 4];
    for (j, &dv) in d.iter().enumerate() {
        a[0] += dv * w0[j];
        a[1] += dv * w1[j];
        a[2] += dv * w2[j];
        a[3] += dv * w3[j];
    }
    a
}

/// Register-tiled row-range worker for [`matmul_acc_wt`]: four outputs per
/// pass via [`dot4`]. Bit-identical to the per-output serial dot products.
fn matmul_acc_wt_rows(
    dy: &[f32],
    w: &[f32],
    out: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    for b in 0..rows {
        let dyb = &dy[b * cols..(b + 1) * cols];
        let ob = &mut out[b * inner..(b + 1) * inner];
        let mut i = 0usize;
        while i + 4 <= inner {
            let a = dot4(
                dyb,
                &w[i * cols..(i + 1) * cols],
                &w[(i + 1) * cols..(i + 2) * cols],
                &w[(i + 2) * cols..(i + 3) * cols],
                &w[(i + 3) * cols..(i + 4) * cols],
            );
            ob[i] += a[0];
            ob[i + 1] += a[1];
            ob[i + 2] += a[2];
            ob[i + 3] += a[3];
            i += 4;
        }
        while i < inner {
            let wrow = &w[i * cols..(i + 1) * cols];
            let mut acc = 0.0f32;
            for (d, wv) in dyb.iter().zip(wrow) {
                acc += d * wv;
            }
            ob[i] += acc;
            i += 1;
        }
    }
}

/// `dw[i, j] += Σ_b x[b, i] · dy[b, j]` — gradient w.r.t. the weights of a matmul.
pub fn matmul_acc_xt(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
) {
    matmul_acc_xt_with_threads(x, dy, dw, rows, inner, cols, matmul_threads(rows, inner, cols));
}

/// [`matmul_acc_xt`] with an explicit thread count; bit-identical for any `threads`.
///
/// Unlike the other two kernels this one reduces over the batch dimension, so
/// the partition is over the *inner* dimension (disjoint `dw` row blocks): each
/// worker keeps the serial `b`-outer accumulation order for its rows, preserving
/// bit-identity.
pub fn matmul_acc_xt_with_threads(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    threads: usize,
) {
    debug_assert_eq!(x.len(), rows * inner);
    debug_assert_eq!(dy.len(), rows * cols);
    debug_assert_eq!(dw.len(), inner * cols);
    if okpar::chunk_count(inner, threads) <= 1 {
        return matmul_acc_xt_inner(x, dy, dw, rows, inner, cols, 0..inner, simd::lanes());
    }
    let lanes = simd::lanes();
    let dw_ptr = SendPtr::new(dw.as_mut_ptr());
    okpar::run_chunks(inner, threads, |_, r| {
        // Safety: chunk inner-ranges are disjoint, so the dw row blocks are.
        let dwp = unsafe { dw_ptr.slice_mut(r.start * cols, r.len() * cols) };
        matmul_acc_xt_inner(x, dy, dwp, rows, inner, cols, r, lanes);
    });
}

/// [`matmul_acc_xt`] serial at a forced SIMD width (the lane-parity test
/// surface); bit-identical to the auto path for every `lanes`.
pub fn matmul_acc_xt_with_lanes(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    lanes: Lanes,
) {
    debug_assert_eq!(x.len(), rows * inner);
    debug_assert_eq!(dy.len(), rows * cols);
    debug_assert_eq!(dw.len(), inner * cols);
    matmul_acc_xt_inner(x, dy, dw, rows, inner, cols, 0..inner, lanes);
}

/// Tiled worker for [`matmul_acc_xt`] restricted to inner indexes `i_range`;
/// `dw` holds only that block's rows.
///
/// The loop nest is `i` outer / `b` inner (the transpose of the naive kernel's
/// order): per `dw` row, gather the nonzero `(b, x[b,i])` pairs of each [`KC`]
/// batch block and run the quads through [`simd::axpy4`] over [`NC`]-wide
/// panels. Every `dw[i, j]` still accumulates its batch contributions in
/// ascending `b` with zero-skip — the identical f32 sequence the naive
/// `b`-outer loop produces, because distinct `dw` rows never interact.
#[allow(clippy::too_many_arguments)]
fn matmul_acc_xt_inner(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    rows: usize,
    inner: usize,
    cols: usize,
    i_range: std::ops::Range<usize>,
    lanes: Lanes,
) {
    let mut bidx = [0usize; KC];
    let mut vals = [0f32; KC];
    for i in i_range.clone() {
        let local = i - i_range.start;
        let dwrow = &mut dw[local * cols..(local + 1) * cols];
        for bs in (0..rows).step_by(KC) {
            let be = (bs + KC).min(rows);
            let mut m = 0usize;
            for b in bs..be {
                let xv = x[b * inner + i];
                if xv != 0.0 {
                    bidx[m] = b;
                    vals[m] = xv;
                    m += 1;
                }
            }
            if m == 0 {
                continue;
            }
            for jp in (0..cols).step_by(NC) {
                let je = (jp + NC).min(cols);
                let dwp = &mut dwrow[jp..je];
                let mut q = 0usize;
                while q + 4 <= m {
                    let rows4 = [
                        &dy[bidx[q] * cols + jp..bidx[q] * cols + je],
                        &dy[bidx[q + 1] * cols + jp..bidx[q + 1] * cols + je],
                        &dy[bidx[q + 2] * cols + jp..bidx[q + 2] * cols + je],
                        &dy[bidx[q + 3] * cols + jp..bidx[q + 3] * cols + je],
                    ];
                    let a = [vals[q], vals[q + 1], vals[q + 2], vals[q + 3]];
                    simd::axpy4_with_lanes(dwp, rows4, a, lanes);
                    q += 4;
                }
                while q < m {
                    let dyrow = &dy[bidx[q] * cols + jp..bidx[q] * cols + je];
                    simd::axpy_with_lanes(dwp, dyrow, vals[q], lanes);
                    q += 1;
                }
            }
        }
    }
}

/// Add a bias row to every row of `out` (`[rows, cols]`).
pub fn add_bias(out: &mut [f32], bias: &[f32], rows: usize, cols: usize) {
    for b in 0..rows {
        for (o, &bv) in out[b * cols..(b + 1) * cols].iter_mut().zip(bias) {
            *o += bv;
        }
    }
}

/// Accumulate the bias gradient: `db[j] += Σ_b dy[b, j]`.
pub fn bias_grad(dy: &[f32], db: &mut [f32], rows: usize, cols: usize) {
    for b in 0..rows {
        for (dbv, &d) in db.iter_mut().zip(&dy[b * cols..(b + 1) * cols]) {
            *dbv += d;
        }
    }
}

/// In-place ReLU; returns nothing, the caller keeps `y` as the backward mask.
pub fn relu_inplace(y: &mut [f32]) {
    for v in y {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: zero `dy` where the forward output was zero.
pub fn relu_backward(dy: &mut [f32], y: &[f32]) {
    for (d, &v) in dy.iter_mut().zip(y) {
        if v <= 0.0 {
            *d = 0.0;
        }
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Row-wise softmax of `logits` (`[rows, cols]`), in place.
pub fn softmax_rows(logits: &mut [f32], rows: usize, cols: usize) {
    for b in 0..rows {
        let row = &mut logits[b * cols..(b + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Fused softmax + cross-entropy over rows with integer targets.
///
/// Writes `d_logits = (softmax − onehot) · scale` and returns
/// `(total loss, #correct argmax)`. Rows whose target is `IGNORE` contribute
/// nothing (used by masked-LM where only masked positions are scored).
/// Target sentinel meaning "do not score this row" (masked-LM unscored positions).
pub const IGNORE: u32 = u32::MAX;

/// Fused softmax + cross-entropy with integer targets; writes
/// `d_logits = (softmax − onehot)·scale`, returns `(summed loss, #correct)`.
/// Rows whose target is [`IGNORE`] are skipped.
pub fn softmax_xent(
    logits: &[f32],
    targets: &[u32],
    d_logits: &mut [f32],
    rows: usize,
    cols: usize,
    scale: f32,
) -> (f64, usize) {
    debug_assert_eq!(logits.len(), rows * cols);
    debug_assert_eq!(targets.len(), rows);
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    for b in 0..rows {
        let dl = &mut d_logits[b * cols..(b + 1) * cols];
        if targets[b] == IGNORE {
            dl.fill(0.0);
            continue;
        }
        let row = &logits[b * cols..(b + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (d, &v) in dl.iter_mut().zip(row) {
            *d = (v - max).exp();
            sum += *d;
        }
        let inv = 1.0 / sum;
        let t = targets[b] as usize;
        let prob_t = (dl[t] * inv).max(1e-12);
        loss += -(prob_t as f64).ln();
        let argmax =
            row.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap_or(0);
        if argmax == t {
            correct += 1;
        }
        for (j, d) in dl.iter_mut().enumerate() {
            *d = (*d * inv - if j == t { 1.0 } else { 0.0 }) * scale;
        }
    }
    (loss, correct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small_known_values() {
        // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
        let x = [1.0, 2.0, 3.0, 4.0];
        let w = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        matmul_acc(&x, &w, &mut out, 2, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_transposes_are_consistent() {
        // dx = dy·Wᵀ and dW = xᵀ·dy must match explicit index formulas.
        let (rows, inner, cols) = (2, 3, 2);
        let x = [0.5f32, -1.0, 2.0, 1.5, 0.0, -0.5];
        let w = [1.0f32, -2.0, 0.5, 1.0, -1.5, 2.0];
        let dy = [1.0f32, 0.5, -1.0, 2.0];

        let mut dx = vec![0.0f32; rows * inner];
        matmul_acc_wt(&dy, &w, &mut dx, rows, inner, cols);
        for b in 0..rows {
            for i in 0..inner {
                let mut want = 0.0f32;
                for j in 0..cols {
                    want += dy[b * cols + j] * w[i * cols + j];
                }
                assert!((dx[b * inner + i] - want).abs() < 1e-6);
            }
        }

        let mut dw = vec![0.0f32; inner * cols];
        matmul_acc_xt(&x, &dy, &mut dw, rows, inner, cols);
        for i in 0..inner {
            for j in 0..cols {
                let mut want = 0.0f32;
                for b in 0..rows {
                    want += x[b * inner + i] * dy[b * cols + j];
                }
                assert!((dw[i * cols + j] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn chunked_matmuls_bit_identical_to_serial() {
        // Deterministic pseudo-random shapes/values; compare every parallel
        // variant bitwise against the single-thread run.
        let (rows, inner, cols) = (7, 13, 5);
        let x: Vec<f32> = (0..rows * inner)
            .map(|i| if i % 5 == 0 { 0.0 } else { ((i * 37 % 101) as f32 - 50.0) * 0.01 })
            .collect();
        let w: Vec<f32> = (0..inner * cols).map(|i| ((i * 53 % 97) as f32 - 48.0) * 0.02).collect();
        let dy: Vec<f32> = (0..rows * cols).map(|i| ((i * 29 % 89) as f32 - 44.0) * 0.03).collect();

        let mut out1 = vec![0.1f32; rows * cols];
        matmul_acc_with_threads(&x, &w, &mut out1, rows, inner, cols, 1);
        let mut dx1 = vec![0.2f32; rows * inner];
        matmul_acc_wt_with_threads(&dy, &w, &mut dx1, rows, inner, cols, 1);
        let mut dw1 = vec![0.3f32; inner * cols];
        matmul_acc_xt_with_threads(&x, &dy, &mut dw1, rows, inner, cols, 1);

        for threads in [2usize, 3, 4, 7, 16] {
            let mut out = vec![0.1f32; rows * cols];
            matmul_acc_with_threads(&x, &w, &mut out, rows, inner, cols, threads);
            assert_eq!(out, out1, "matmul_acc threads={threads}");
            let mut dx = vec![0.2f32; rows * inner];
            matmul_acc_wt_with_threads(&dy, &w, &mut dx, rows, inner, cols, threads);
            assert_eq!(dx, dx1, "matmul_acc_wt threads={threads}");
            let mut dw = vec![0.3f32; inner * cols];
            matmul_acc_xt_with_threads(&x, &dy, &mut dw, rows, inner, cols, threads);
            assert_eq!(dw, dw1, "matmul_acc_xt threads={threads}");
        }
    }

    #[test]
    fn bias_and_relu() {
        let mut out = [1.0f32, -2.0, 3.0, -4.0];
        add_bias(&mut out, &[0.5, 0.5], 2, 2);
        assert_eq!(out, [1.5, -1.5, 3.5, -3.5]);
        relu_inplace(&mut out);
        assert_eq!(out, [1.5, 0.0, 3.5, 0.0]);
        let mut dy = [1.0f32; 4];
        relu_backward(&mut dy, &out);
        assert_eq!(dy, [1.0, 0.0, 1.0, 0.0]);
        let mut db = [0.0f32; 2];
        bias_grad(&[1.0, 2.0, 3.0, 4.0], &mut db, 2, 2);
        assert_eq!(db, [4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let mut l = [0.0f32, 0.0, 1000.0, 1000.0];
        softmax_rows(&mut l, 2, 2);
        assert!((l[0] - 0.5).abs() < 1e-6 && (l[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn xent_loss_and_gradient() {
        let logits = [2.0f32, 0.0, 0.0, 2.0];
        let targets = [0u32, 0];
        let mut dl = [0.0f32; 4];
        let (loss, correct) = softmax_xent(&logits, &targets, &mut dl, 2, 2, 1.0);
        assert_eq!(correct, 1);
        // Row 0: p(target) = e²/(e²+1) ≈ 0.881 → -ln ≈ 0.127.
        // Row 1: p(target) = 1/(1+e²) ≈ 0.119 → -ln ≈ 2.127.
        assert!((loss - (0.126928 + 2.126928)).abs() < 1e-4);
        // Gradients sum to zero per row.
        assert!((dl[0] + dl[1]).abs() < 1e-6);
        assert!(dl[0] < 0.0 && dl[1] > 0.0);
    }

    #[test]
    fn xent_ignores_masked_rows() {
        let logits = [1.0f32, 2.0, 3.0, 4.0];
        let targets = [IGNORE, 1];
        let mut dl = [9.0f32; 4];
        let (loss, correct) = softmax_xent(&logits, &targets, &mut dl, 2, 2, 1.0);
        assert_eq!(dl[0], 0.0);
        assert_eq!(dl[1], 0.0);
        assert_eq!(correct, 1);
        assert!(loss > 0.0);
    }

    #[test]
    fn numerical_gradient_of_xent() {
        let logits = [0.3f32, -0.7, 1.2];
        let targets = [2u32];
        let mut dl = [0.0f32; 3];
        softmax_xent(&logits, &targets, &mut dl, 1, 3, 1.0);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut lp = logits;
            lp[j] += eps;
            let mut lm = logits;
            lm[j] -= eps;
            let mut scratch = [0.0f32; 3];
            let (fp, _) = softmax_xent(&lp, &targets, &mut scratch, 1, 3, 1.0);
            let (fm, _) = softmax_xent(&lm, &targets, &mut scratch, 1, 3, 1.0);
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((num - dl[j]).abs() < 1e-3, "j={j}: {num} vs {}", dl[j]);
        }
    }
}
