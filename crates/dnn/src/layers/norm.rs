//! Layer normalization.

use crate::arena::{Arena, Slot};

/// LayerNorm over the last dimension: `y = γ · (x − μ)/σ + β` per row.
#[derive(Clone, Copy, Debug)]
pub struct LayerNorm {
    /// Normalized (last) dimension.
    pub dim: usize,
    gamma: Slot,
    beta: Slot,
}

const EPS: f32 = 1e-5;

/// Forward cache needed by backward: per-row inverse std and normalized values.
pub struct LnCache {
    /// Per-row 1/σ.
    pub inv_std: Vec<f32>,
    /// Normalized inputs (pre-γ/β).
    pub xhat: Vec<f32>,
}

impl LayerNorm {
    /// New LayerNorm with γ = 1, β = 0.
    pub fn init(arena: &mut Arena, dim: usize) -> Self {
        let gamma = arena.alloc_with(dim, || 1.0);
        let beta = arena.alloc_zeros(dim);
        Self { dim, gamma, beta }
    }

    /// `x`: `[rows, dim]` → `(y, cache)`.
    pub fn forward(&self, arena: &Arena, x: &[f32], rows: usize) -> (Vec<f32>, LnCache) {
        let d = self.dim;
        debug_assert_eq!(x.len(), rows * d);
        let gamma = arena.p(self.gamma);
        let beta = arena.p(self.beta);
        let mut y = vec![0.0f32; x.len()];
        let mut inv_std = vec![0.0f32; rows];
        let mut xhat = vec![0.0f32; x.len()];
        for r in 0..rows {
            let row = &x[r * d..(r + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let is = 1.0 / (var + EPS).sqrt();
            inv_std[r] = is;
            for j in 0..d {
                let xh = (row[j] - mean) * is;
                xhat[r * d + j] = xh;
                y[r * d + j] = gamma[j] * xh + beta[j];
            }
        }
        (y, LnCache { inv_std, xhat })
    }

    /// Accumulates γ/β grads; returns `dx`.
    pub fn backward(
        &self,
        arena: &mut Arena,
        cache: &LnCache,
        dy: &[f32],
        rows: usize,
    ) -> Vec<f32> {
        let d = self.dim;
        {
            let (_, gg) = arena.pg_mut(self.gamma);
            for r in 0..rows {
                for j in 0..d {
                    gg[j] += dy[r * d + j] * cache.xhat[r * d + j];
                }
            }
        }
        {
            let (_, gb) = arena.pg_mut(self.beta);
            for r in 0..rows {
                for j in 0..d {
                    gb[j] += dy[r * d + j];
                }
            }
        }
        let gamma = arena.p(self.gamma);
        let mut dx = vec![0.0f32; rows * d];
        for r in 0..rows {
            // dxhat = dy·γ ; dx = (dxhat − mean(dxhat) − xhat·mean(dxhat·xhat))·inv_std
            let mut mean_dxh = 0.0f32;
            let mut mean_dxh_xh = 0.0f32;
            for j in 0..d {
                let dxh = dy[r * d + j] * gamma[j];
                mean_dxh += dxh;
                mean_dxh_xh += dxh * cache.xhat[r * d + j];
            }
            mean_dxh /= d as f32;
            mean_dxh_xh /= d as f32;
            for j in 0..d {
                let dxh = dy[r * d + j] * gamma[j];
                dx[r * d + j] =
                    (dxh - mean_dxh - cache.xhat[r * d + j] * mean_dxh_xh) * cache.inv_std[r];
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let mut arena = Arena::new();
        let ln = LayerNorm::init(&mut arena, 4);
        let x = [1.0f32, 2.0, 3.0, 4.0, -2.0, -2.0, 2.0, 2.0];
        let (y, _) = ln.forward(&arena, &x, 2);
        for r in 0..2 {
            let row = &y[r * 4..(r + 1) * 4];
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gradients_match_numerical() {
        let mut arena = Arena::new();
        let ln = LayerNorm::init(&mut arena, 3);
        // Make γ/β non-trivial.
        arena.params_mut().copy_from_slice(&[1.5, 0.5, 2.0, 0.1, -0.2, 0.3]);
        let x = [0.4f32, -0.9, 1.3, 2.0, 0.1, -0.7];
        let target = [0.5f32, -0.5, 1.0, 0.0, 0.3, -0.3];

        let loss = |a: &Arena, xi: &[f32]| -> f64 {
            let (y, _) = ln.forward(a, xi, 2);
            y.iter().zip(&target).map(|(v, t)| 0.5 * ((v - t) as f64).powi(2)).sum()
        };

        let (y, cache) = ln.forward(&arena, &x, 2);
        let dy: Vec<f32> = y.iter().zip(&target).map(|(v, t)| v - t).collect();
        arena.zero_grads();
        let dx = ln.backward(&mut arena, &cache, &dy, 2);
        let analytic = arena.grads().to_vec();

        let eps = 1e-3f32;
        for i in 0..arena.len() {
            let orig = arena.params()[i];
            arena.params_mut()[i] = orig + eps;
            let fp = loss(&arena, &x);
            arena.params_mut()[i] = orig - eps;
            let fm = loss(&arena, &x);
            arena.params_mut()[i] = orig;
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((num - analytic[i]).abs() < 2e-3, "param {i}: {num} vs {}", analytic[i]);
        }
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let num = ((loss(&arena, &xp) - loss(&arena, &xm)) / (2.0 * eps as f64)) as f32;
            assert!((num - dx[i]).abs() < 2e-3, "x {i}: {num} vs {}", dx[i]);
        }
    }
}
