//! Token embedding lookup table.

use crate::arena::{Arena, Slot};
use rand::prelude::*;

/// Embedding table `[vocab, dim]`; forward is a gather, backward a scatter-add.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// Vocabulary size.
    pub vocab: usize,
    /// Embedding dimension.
    pub dim: usize,
    table: Slot,
}

impl Embedding {
    /// New embedding table with uniform init.
    pub fn new(arena: &mut Arena, rng: &mut StdRng, vocab: usize, dim: usize) -> Self {
        let bound = (3.0 / dim as f32).sqrt();
        let table = arena.alloc_uniform(vocab * dim, bound, rng);
        Self { vocab, dim, table }
    }

    /// `tokens`: `[count]` → `[count, dim]`.
    pub fn forward(&self, arena: &Arena, tokens: &[u32]) -> Vec<f32> {
        let table = arena.p(self.table);
        let mut out = Vec::with_capacity(tokens.len() * self.dim);
        for &t in tokens {
            let t = t as usize;
            debug_assert!(t < self.vocab, "token {t} out of vocab {}", self.vocab);
            out.extend_from_slice(&table[t * self.dim..(t + 1) * self.dim]);
        }
        out
    }

    /// Scatter-add `d_out` (`[count, dim]`) into the table gradient.
    pub fn backward(&self, arena: &mut Arena, tokens: &[u32], d_out: &[f32]) {
        let (_, grad) = arena.pg_mut(self.table);
        for (i, &t) in tokens.iter().enumerate() {
            let t = t as usize;
            let src = &d_out[i * self.dim..(i + 1) * self.dim];
            for (g, &d) in grad[t * self.dim..(t + 1) * self.dim].iter_mut().zip(src) {
                *g += d;
            }
        }
    }

    /// Arena slot of the embedding table.
    pub fn table_slot(&self) -> Slot {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_scatter() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(2);
        let emb = Embedding::new(&mut arena, &mut rng, 4, 2);
        arena.params_mut().copy_from_slice(&[
            0.0, 0.1, // token 0
            1.0, 1.1, // token 1
            2.0, 2.1, // token 2
            3.0, 3.1, // token 3
        ]);
        let out = emb.forward(&arena, &[2, 0, 2]);
        assert_eq!(out, vec![2.0, 2.1, 0.0, 0.1, 2.0, 2.1]);

        arena.zero_grads();
        emb.backward(&mut arena, &[2, 0, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        // Token 2 receives the sum of the two occurrences.
        assert_eq!(arena.grads(), &[3.0, 4.0, 0.0, 0.0, 6.0, 8.0, 0.0, 0.0]);
    }
}
