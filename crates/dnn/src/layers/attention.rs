//! Multi-head self-attention (the transformer building block of BertLite).

use crate::arena::Arena;
use crate::layers::Linear;
use crate::ops::softmax_rows;
use rand::prelude::*;

/// Multi-head scaled-dot-product self-attention with learned Q/K/V/O projections.
#[derive(Clone, Copy, Debug)]
pub struct MultiHeadAttention {
    /// Model (embedding) dimension.
    pub d_model: usize,
    /// Number of attention heads (must divide `d_model`).
    pub heads: usize,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
}

/// Forward cache for backward.
pub struct AttnCache {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    /// `[batch, heads, seq, seq]` attention weights (post-softmax).
    attn: Vec<f32>,
    /// `[batch·seq, d_model]` concatenated head outputs (input of the O projection).
    concat: Vec<f32>,
}

impl MultiHeadAttention {
    /// New attention block with fresh Q/K/V/O projections.
    pub fn new(arena: &mut Arena, rng: &mut StdRng, d_model: usize, heads: usize) -> Self {
        assert_eq!(d_model % heads, 0, "d_model must be divisible by heads");
        Self {
            d_model,
            heads,
            wq: Linear::new(arena, rng, d_model, d_model),
            wk: Linear::new(arena, rng, d_model, d_model),
            wv: Linear::new(arena, rng, d_model, d_model),
            wo: Linear::new(arena, rng, d_model, d_model),
        }
    }

    /// `x`: `[batch·seq, d_model]` → `(y, cache)`, same shape.
    pub fn forward(
        &self,
        arena: &Arena,
        x: &[f32],
        batch: usize,
        seq: usize,
    ) -> (Vec<f32>, AttnCache) {
        let d = self.d_model;
        let h = self.heads;
        let dh = d / h;
        let rows = batch * seq;
        debug_assert_eq!(x.len(), rows * d);

        let q = self.wq.forward(arena, x, rows);
        let k = self.wk.forward(arena, x, rows);
        let v = self.wv.forward(arena, x, rows);

        let scale = 1.0 / (dh as f32).sqrt();
        let mut attn = vec![0.0f32; batch * h * seq * seq];
        let mut concat = vec![0.0f32; rows * d];
        for b in 0..batch {
            for hd in 0..h {
                let abase = ((b * h) + hd) * seq * seq;
                // scores[i, j] = q_i · k_j · scale within this head's slice.
                for i in 0..seq {
                    let qrow = &q[(b * seq + i) * d + hd * dh..(b * seq + i) * d + (hd + 1) * dh];
                    for j in 0..seq {
                        let krow =
                            &k[(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                        let mut s = 0.0f32;
                        for (a, bb) in qrow.iter().zip(krow) {
                            s += a * bb;
                        }
                        attn[abase + i * seq + j] = s * scale;
                    }
                }
                softmax_rows(&mut attn[abase..abase + seq * seq], seq, seq);
                // out_i = Σ_j attn[i,j] · v_j
                for i in 0..seq {
                    let orow =
                        &mut concat[(b * seq + i) * d + hd * dh..(b * seq + i) * d + (hd + 1) * dh];
                    for j in 0..seq {
                        let a = attn[abase + i * seq + j];
                        if a == 0.0 {
                            continue;
                        }
                        let vrow =
                            &v[(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                        for (o, &vv) in orow.iter_mut().zip(vrow) {
                            *o += a * vv;
                        }
                    }
                }
            }
        }
        let y = self.wo.forward(arena, &concat, rows);
        (y, AttnCache { q, k, v, attn, concat })
    }

    /// Accumulates all projection grads; returns `dx`.
    pub fn backward(
        &self,
        arena: &mut Arena,
        x: &[f32],
        cache: &AttnCache,
        dy: &[f32],
        batch: usize,
        seq: usize,
    ) -> Vec<f32> {
        let d = self.d_model;
        let h = self.heads;
        let dh = d / h;
        let rows = batch * seq;
        let scale = 1.0 / (dh as f32).sqrt();

        let dconcat = self.wo.backward(arena, &cache.concat, dy, rows);

        let mut dq = vec![0.0f32; rows * d];
        let mut dk = vec![0.0f32; rows * d];
        let mut dv = vec![0.0f32; rows * d];
        for b in 0..batch {
            for hd in 0..h {
                let abase = ((b * h) + hd) * seq * seq;
                // dattn[i,j] = dconcat_i · v_j ; dv_j += Σ_i attn[i,j]·dconcat_i
                let mut dattn = vec![0.0f32; seq * seq];
                for i in 0..seq {
                    let drow =
                        &dconcat[(b * seq + i) * d + hd * dh..(b * seq + i) * d + (hd + 1) * dh];
                    for j in 0..seq {
                        let vrow = &cache.v
                            [(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                        let mut s = 0.0f32;
                        for (a, bb) in drow.iter().zip(vrow) {
                            s += a * bb;
                        }
                        dattn[i * seq + j] = s;
                        let a = cache.attn[abase + i * seq + j];
                        if a != 0.0 {
                            let dvrow = &mut dv
                                [(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                            for (dvv, &dd) in dvrow.iter_mut().zip(drow) {
                                *dvv += a * dd;
                            }
                        }
                    }
                }
                // Softmax backward per row: ds = attn ⊙ (dattn − Σⱼ dattn·attn).
                for i in 0..seq {
                    let arow = &cache.attn[abase + i * seq..abase + (i + 1) * seq];
                    let drow = &mut dattn[i * seq..(i + 1) * seq];
                    let dot: f32 = arow.iter().zip(drow.iter()).map(|(&a, &d)| a * d).sum();
                    for (dd, &a) in drow.iter_mut().zip(arow) {
                        *dd = a * (*dd - dot) * scale;
                    }
                }
                // dq_i += Σⱼ ds[i,j]·k_j ; dk_j += Σᵢ ds[i,j]·q_i
                for i in 0..seq {
                    let dqrow =
                        &mut dq[(b * seq + i) * d + hd * dh..(b * seq + i) * d + (hd + 1) * dh];
                    for j in 0..seq {
                        let s = dattn[i * seq + j];
                        if s == 0.0 {
                            continue;
                        }
                        let krow = &cache.k
                            [(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                        for (dd, &kk) in dqrow.iter_mut().zip(krow) {
                            *dd += s * kk;
                        }
                    }
                }
                for j in 0..seq {
                    let dkrow =
                        &mut dk[(b * seq + j) * d + hd * dh..(b * seq + j) * d + (hd + 1) * dh];
                    for i in 0..seq {
                        let s = dattn[i * seq + j];
                        if s == 0.0 {
                            continue;
                        }
                        let qrow = &cache.q
                            [(b * seq + i) * d + hd * dh..(b * seq + i) * d + (hd + 1) * dh];
                        for (dd, &qq) in dkrow.iter_mut().zip(qrow) {
                            *dd += s * qq;
                        }
                    }
                }
            }
        }

        let mut dx = self.wq.backward(arena, x, &dq, rows);
        for (a, b) in dx.iter_mut().zip(self.wk.backward(arena, x, &dk, rows)) {
            *a += b;
        }
        for (a, b) in dx.iter_mut().zip(self.wv.backward(arena, x, &dv, rows)) {
            *a += b;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;

    #[test]
    fn output_shape_and_softmax_rows_sum_to_one() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(5);
        let attn = MultiHeadAttention::new(&mut arena, &mut rng, 8, 2);
        let (batch, seq) = (2, 3);
        let x: Vec<f32> = (0..batch * seq * 8).map(|i| ((i as f32) * 0.13).sin()).collect();
        let (y, cache) = attn.forward(&arena, &x, batch, seq);
        assert_eq!(y.len(), x.len());
        for b in 0..batch {
            for h in 0..2 {
                for i in 0..seq {
                    let base = ((b * 2) + h) * seq * seq + i * seq;
                    let s: f32 = cache.attn[base..base + seq].iter().sum();
                    assert!((s - 1.0).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn gradients_match_numerical() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(6);
        let attn = MultiHeadAttention::new(&mut arena, &mut rng, 4, 2);
        let (batch, seq) = (1, 3);
        let x: Vec<f32> = (0..batch * seq * 4).map(|i| ((i as f32) * 0.29).cos() * 0.6).collect();

        let mut loss_fn = |a: &Arena| -> f64 {
            let (y, _) = attn.forward(a, &x, batch, seq);
            y.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };

        let (y, cache) = attn.forward(&arena, &x, batch, seq);
        arena.zero_grads();
        let dx = attn.backward(&mut arena, &x, &cache, &y, batch, seq);
        let analytic = arena.grads().to_vec();
        check_param_grads(&mut arena, &mut loss_fn, &analytic, 3e-2);

        // Input gradient spot-check.
        let eps = 1e-3f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f64 = {
                let (y, _) = attn.forward(&arena, &xp, batch, seq);
                y.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
            };
            let fm: f64 = {
                let (y, _) = attn.forward(&arena, &xm, batch, seq);
                y.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
            };
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx[i]).abs() < 3e-2 * 1.0f32.max(num.abs()),
                "x {i}: {num} vs {}",
                dx[i]
            );
        }
    }
}
