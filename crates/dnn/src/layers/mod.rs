//! Neural-network layers over the flat [`crate::Arena`].
//!
//! Every layer stores only its [`crate::Slot`]s and hyperparameters; activations are
//! owned by the caller (the model), which keeps backward passes explicit and
//! allocation-light. Each layer's backward is verified against numerical gradients
//! in its module tests.

pub mod attention;
pub mod conv;
pub mod dropout;
pub mod embedding;
pub mod linear;
pub mod lstm;
pub mod norm;

pub use attention::MultiHeadAttention;
pub use conv::{Conv2d, MaxPool2d};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use linear::Linear;
pub use lstm::{LstmCell, LstmState};
pub use norm::LayerNorm;

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Shared numerical-gradient checking helper for layer tests.

    use crate::Arena;

    /// Check `d(scalar loss)/d(params)` computed by `backward` against central
    /// differences. `forward_loss` must be a pure function of the arena parameters.
    pub fn check_param_grads(
        arena: &mut Arena,
        forward_loss: &mut dyn FnMut(&Arena) -> f64,
        analytic: &[f32],
        tol: f32,
    ) {
        let eps = 1e-3f32;
        let n = arena.len();
        for i in 0..n {
            let orig = arena.params()[i];
            arena.params_mut()[i] = orig + eps;
            let fp = forward_loss(arena);
            arena.params_mut()[i] = orig - eps;
            let fm = forward_loss(arena);
            arena.params_mut()[i] = orig;
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            let a = analytic[i];
            let denom = 1.0f32.max(a.abs()).max(num.abs());
            assert!((num - a).abs() / denom < tol, "param {i}: numerical {num} vs analytic {a}");
        }
    }
}
