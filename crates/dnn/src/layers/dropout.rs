//! Inverted dropout with deterministic, seeded masks.
//!
//! Masks are a pure function of `(seed, iteration)`, so data-parallel replicas
//! regenerate identical masks without storing them — the same trick the datasets
//! use for reproducibility.

use rand::prelude::*;

/// Inverted dropout: activations are zeroed with probability `p` at train time and
/// the survivors scaled by `1/(1−p)`, so evaluation needs no rescaling.
#[derive(Clone, Copy, Debug)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
}

impl Dropout {
    /// A dropout layer with drop probability `p`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0,1)");
        Self { p, seed }
    }

    /// Apply the iteration-`t` mask in place; returns the mask for backward.
    pub fn forward_train(&self, x: &mut [f32], t: u64) -> Vec<bool> {
        if self.p == 0.0 {
            return vec![true; x.len()];
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ t.wrapping_mul(0x9E3779B97F4A7C15));
        let scale = 1.0 / (1.0 - self.p);
        let mut mask = Vec::with_capacity(x.len());
        for v in x.iter_mut() {
            let keep = !rng.gen_bool(self.p as f64);
            mask.push(keep);
            *v = if keep { *v * scale } else { 0.0 };
        }
        mask
    }

    /// Backward: zero the gradient where the forward mask dropped, scale the rest.
    pub fn backward(&self, dy: &mut [f32], mask: &[bool]) {
        let scale = 1.0 / (1.0 - self.p);
        for (d, &keep) in dy.iter_mut().zip(mask) {
            *d = if keep { *d * scale } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_are_deterministic_per_iteration() {
        let d = Dropout::new(0.5, 7);
        let mut a = vec![1.0f32; 64];
        let mut b = vec![1.0f32; 64];
        let ma = d.forward_train(&mut a, 3);
        let mb = d.forward_train(&mut b, 3);
        assert_eq!(ma, mb);
        assert_eq!(a, b);
        let mut c = vec![1.0f32; 64];
        let mc = d.forward_train(&mut c, 4);
        assert_ne!(ma, mc, "different iterations get different masks");
    }

    #[test]
    fn expectation_is_preserved() {
        let d = Dropout::new(0.25, 1);
        let mut x = vec![1.0f32; 100_000];
        d.forward_train(&mut x, 0);
        let mean: f64 = x.iter().map(|&v| v as f64).sum::<f64>() / x.len() as f64;
        assert!((mean - 1.0).abs() < 0.02, "inverted scaling should keep E[x]: {mean}");
    }

    #[test]
    fn backward_matches_mask() {
        let d = Dropout::new(0.5, 2);
        let mut x = vec![1.0f32; 16];
        let mask = d.forward_train(&mut x, 9);
        let mut dy = vec![1.0f32; 16];
        d.backward(&mut dy, &mask);
        for ((v, g), &keep) in x.iter().zip(&dy).zip(&mask) {
            if keep {
                assert_eq!(*v, 2.0);
                assert_eq!(*g, 2.0);
            } else {
                assert_eq!(*v, 0.0);
                assert_eq!(*g, 0.0);
            }
        }
    }

    #[test]
    fn zero_probability_is_identity() {
        let d = Dropout::new(0.0, 3);
        let mut x = vec![0.5f32; 8];
        let mask = d.forward_train(&mut x, 0);
        assert!(mask.iter().all(|&k| k));
        assert_eq!(x, vec![0.5f32; 8]);
    }
}
