//! LSTM cell with explicit BPTT support.

use crate::arena::{Arena, Slot};
use crate::ops::{add_bias, bias_grad, matmul_acc, matmul_acc_wt, matmul_acc_xt, sigmoid};
use rand::prelude::*;

/// Single LSTM cell. One fused weight matrix `[(in+hid), 4·hid]` with gate order
/// (input, forget, cell, output); forget-gate biases initialized to 1.
#[derive(Clone, Copy, Debug)]
pub struct LstmCell {
    /// Input dimension.
    pub in_dim: usize,
    /// Hidden/cell state dimension.
    pub hid: usize,
    w: Slot,
    b: Slot,
}

/// Per-timestep cache for backward.
pub struct LstmState {
    /// `[batch, in+hid]` concatenated input.
    pub concat: Vec<f32>,
    /// `[batch, 4·hid]` post-activation gates (i, f, g, o).
    pub gates: Vec<f32>,
    /// `[batch, hid]` previous cell state.
    pub c_prev: Vec<f32>,
    /// `[batch, hid]` tanh of the new cell state.
    pub tanh_c: Vec<f32>,
}

impl LstmCell {
    /// New cell with fused gate weights and forget-bias 1 init.
    pub fn new(arena: &mut Arena, rng: &mut StdRng, in_dim: usize, hid: usize) -> Self {
        let fan_in = (in_dim + hid) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let w = arena.alloc_uniform((in_dim + hid) * 4 * hid, bound, rng);
        let b = arena.alloc_with(4 * hid, || 0.0);
        let cell = Self { in_dim, hid, w, b };
        // Forget-gate bias = 1 improves early gradient flow (standard practice).
        let bias = &mut arena.params_mut()[b.offset + hid..b.offset + 2 * hid];
        bias.fill(1.0);
        cell
    }

    /// One timestep: returns `(h_new, c_new, cache)`.
    pub fn step_forward(
        &self,
        arena: &Arena,
        x_t: &[f32],
        h: &[f32],
        c: &[f32],
        batch: usize,
    ) -> (Vec<f32>, Vec<f32>, LstmState) {
        let (hid, ind) = (self.hid, self.in_dim);
        debug_assert_eq!(x_t.len(), batch * ind);
        debug_assert_eq!(h.len(), batch * hid);

        let mut concat = vec![0.0f32; batch * (ind + hid)];
        for bi in 0..batch {
            concat[bi * (ind + hid)..bi * (ind + hid) + ind]
                .copy_from_slice(&x_t[bi * ind..(bi + 1) * ind]);
            concat[bi * (ind + hid) + ind..(bi + 1) * (ind + hid)]
                .copy_from_slice(&h[bi * hid..(bi + 1) * hid]);
        }

        let mut z = vec![0.0f32; batch * 4 * hid];
        matmul_acc(&concat, arena.p(self.w), &mut z, batch, ind + hid, 4 * hid);
        add_bias(&mut z, arena.p(self.b), batch, 4 * hid);

        let mut gates = z; // reuse storage, apply activations in place
        let mut c_new = vec![0.0f32; batch * hid];
        let mut h_new = vec![0.0f32; batch * hid];
        let mut tanh_c = vec![0.0f32; batch * hid];
        for bi in 0..batch {
            let g = &mut gates[bi * 4 * hid..(bi + 1) * 4 * hid];
            for j in 0..hid {
                g[j] = sigmoid(g[j]); // i
                g[hid + j] = sigmoid(g[hid + j]); // f
                g[2 * hid + j] = g[2 * hid + j].tanh(); // g
                g[3 * hid + j] = sigmoid(g[3 * hid + j]); // o
                let cv = g[hid + j] * c[bi * hid + j] + g[j] * g[2 * hid + j];
                c_new[bi * hid + j] = cv;
                let tc = cv.tanh();
                tanh_c[bi * hid + j] = tc;
                h_new[bi * hid + j] = g[3 * hid + j] * tc;
            }
        }
        let cache = LstmState { concat, gates, c_prev: c.to_vec(), tanh_c };
        (h_new, c_new, cache)
    }

    /// One BPTT step: given `dh` and `dc` flowing in from the future, accumulates
    /// weight grads and returns `(dx_t, dh_prev, dc_prev)`.
    pub fn step_backward(
        &self,
        arena: &mut Arena,
        cache: &LstmState,
        dh: &[f32],
        dc_in: &[f32],
        batch: usize,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let (hid, ind) = (self.hid, self.in_dim);
        let mut dz = vec![0.0f32; batch * 4 * hid];
        let mut dc_prev = vec![0.0f32; batch * hid];
        for bi in 0..batch {
            let g = &cache.gates[bi * 4 * hid..(bi + 1) * 4 * hid];
            for j in 0..hid {
                let (i_g, f_g, g_g, o_g) = (g[j], g[hid + j], g[2 * hid + j], g[3 * hid + j]);
                let tc = cache.tanh_c[bi * hid + j];
                let dh_j = dh[bi * hid + j];
                let mut dc = dc_in[bi * hid + j] + dh_j * o_g * (1.0 - tc * tc);
                let d_o = dh_j * tc;
                let d_i = dc * g_g;
                let d_g = dc * i_g;
                let d_f = dc * cache.c_prev[bi * hid + j];
                dc *= f_g;
                dc_prev[bi * hid + j] = dc;
                let dzb = &mut dz[bi * 4 * hid..(bi + 1) * 4 * hid];
                dzb[j] = d_i * i_g * (1.0 - i_g);
                dzb[hid + j] = d_f * f_g * (1.0 - f_g);
                dzb[2 * hid + j] = d_g * (1.0 - g_g * g_g);
                dzb[3 * hid + j] = d_o * o_g * (1.0 - o_g);
            }
        }
        {
            let (_, gw) = arena.pg_mut(self.w);
            matmul_acc_xt(&cache.concat, &dz, gw, batch, ind + hid, 4 * hid);
        }
        {
            let (_, gb) = arena.pg_mut(self.b);
            bias_grad(&dz, gb, batch, 4 * hid);
        }
        let mut dconcat = vec![0.0f32; batch * (ind + hid)];
        matmul_acc_wt(&dz, arena.p(self.w), &mut dconcat, batch, ind + hid, 4 * hid);
        let mut dx = vec![0.0f32; batch * ind];
        let mut dh_prev = vec![0.0f32; batch * hid];
        for bi in 0..batch {
            dx[bi * ind..(bi + 1) * ind]
                .copy_from_slice(&dconcat[bi * (ind + hid)..bi * (ind + hid) + ind]);
            dh_prev[bi * hid..(bi + 1) * hid]
                .copy_from_slice(&dconcat[bi * (ind + hid) + ind..(bi + 1) * (ind + hid)]);
        }
        (dx, dh_prev, dc_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;

    /// Unrolled 3-step forward computing a scalar loss = ½‖h_T‖².
    fn unrolled_loss(cell: &LstmCell, arena: &Arena, xs: &[Vec<f32>], batch: usize) -> f64 {
        let mut h = vec![0.0f32; batch * cell.hid];
        let mut c = vec![0.0f32; batch * cell.hid];
        for x in xs {
            let (h2, c2, _) = cell.step_forward(arena, x, &h, &c, batch);
            h = h2;
            c = c2;
        }
        h.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
    }

    #[test]
    fn bptt_gradients_match_numerical() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(12);
        let cell = LstmCell::new(&mut arena, &mut rng, 3, 4);
        let batch = 2;
        let xs: Vec<Vec<f32>> = (0..3)
            .map(|t| (0..batch * 3).map(|i| ((i + t * 5) as f32 * 0.37).sin() * 0.8).collect())
            .collect();

        // Analytic: forward through 3 steps keeping caches, backward in reverse.
        let mut h = vec![0.0f32; batch * 4];
        let mut c = vec![0.0f32; batch * 4];
        let mut caches = Vec::new();
        for x in &xs {
            let (h2, c2, cache) = cell.step_forward(&arena, x, &h, &c, batch);
            caches.push(cache);
            h = h2;
            c = c2;
        }
        arena.zero_grads();
        let mut dh = h.clone(); // d(½‖h‖²)/dh = h
        let mut dc = vec![0.0f32; batch * 4];
        for cache in caches.iter().rev() {
            let (_dx, dh_prev, dc_prev) = cell.step_backward(&mut arena, cache, &dh, &dc, batch);
            dh = dh_prev;
            dc = dc_prev;
        }
        let analytic = arena.grads().to_vec();

        let mut loss_fn = |a: &Arena| unrolled_loss(&cell, a, &xs, batch);
        check_param_grads(&mut arena, &mut loss_fn, &analytic, 3e-2);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(0);
        let cell = LstmCell::new(&mut arena, &mut rng, 2, 3);
        let b = arena.p(cell.b);
        assert_eq!(&b[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_input_keeps_state_near_zero() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cell = LstmCell::new(&mut arena, &mut rng, 2, 3);
        let (h, c, _) = cell.step_forward(&arena, &[0.0; 2], &[0.0; 3], &[0.0; 3], 1);
        // With zero input and zero state, g-gate tanh(0)=0 → c = 0, h = 0.
        assert!(h.iter().all(|v| v.abs() < 1e-6));
        assert!(c.iter().all(|v| v.abs() < 1e-6));
    }
}
