//! 2-D convolution and max-pooling (NCHW, 3×3 kernels, stride 1, padding 1).

use crate::arena::{Arena, Slot};
use rand::prelude::*;

/// 3×3 same-padding convolution: input `[batch, in_ch, h, w]`, output
/// `[batch, out_ch, h, w]`. Weights `[out_ch, in_ch, 3, 3]`, bias `[out_ch]`.
#[derive(Clone, Copy, Debug)]
pub struct Conv2d {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    w: Slot,
    b: Slot,
}

const K: usize = 3;
const PAD: isize = 1;

impl Conv2d {
    /// New 3×3 convolution with Kaiming-uniform init.
    pub fn new(arena: &mut Arena, rng: &mut StdRng, in_ch: usize, out_ch: usize) -> Self {
        let fan_in = (in_ch * K * K) as f32;
        let bound = (6.0 / fan_in).sqrt();
        let w = arena.alloc_uniform(out_ch * in_ch * K * K, bound, rng);
        let b = arena.alloc_zeros(out_ch);
        Self { in_ch, out_ch, w, b }
    }

    /// Forward convolution over `[batch, in_ch, h, wd]` input.
    #[allow(clippy::needless_range_loop)] // index arithmetic mirrors the NCHW math
    pub fn forward(&self, arena: &Arena, x: &[f32], batch: usize, h: usize, wd: usize) -> Vec<f32> {
        debug_assert_eq!(x.len(), batch * self.in_ch * h * wd);
        let weights = arena.p(self.w);
        let bias = arena.p(self.b);
        let mut y = vec![0.0f32; batch * self.out_ch * h * wd];
        for n in 0..batch {
            for oc in 0..self.out_ch {
                let ybase = ((n * self.out_ch) + oc) * h * wd;
                y[ybase..ybase + h * wd].fill(bias[oc]);
                for ic in 0..self.in_ch {
                    let xbase = ((n * self.in_ch) + ic) * h * wd;
                    let wbase = ((oc * self.in_ch) + ic) * K * K;
                    for ky in 0..K {
                        for kx in 0..K {
                            let wv = weights[wbase + ky * K + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            let dy = ky as isize - PAD;
                            let dx = kx as isize - PAD;
                            let y0 = (-dy).max(0) as usize;
                            let y1 = (h as isize - dy).min(h as isize) as usize;
                            let x0 = (-dx).max(0) as usize;
                            let x1 = (wd as isize - dx).min(wd as isize) as usize;
                            for iy in y0..y1 {
                                let sy = (iy as isize + dy) as usize;
                                let yrow = ybase + iy * wd;
                                let xrow = xbase + sy * wd;
                                for ix in x0..x1 {
                                    let sx = (ix as isize + dx) as usize;
                                    y[yrow + ix] += wv * x[xrow + sx];
                                }
                            }
                        }
                    }
                }
            }
        }
        y
    }

    /// Accumulates weight/bias grads; returns `dx`.
    #[allow(clippy::needless_range_loop)]
    pub fn backward(
        &self,
        arena: &mut Arena,
        x: &[f32],
        dy: &[f32],
        batch: usize,
        h: usize,
        wd: usize,
    ) -> Vec<f32> {
        let mut dx = vec![0.0f32; x.len()];
        {
            let (_, gb) = arena.pg_mut(self.b);
            for n in 0..batch {
                for oc in 0..self.out_ch {
                    let ybase = ((n * self.out_ch) + oc) * h * wd;
                    gb[oc] += dy[ybase..ybase + h * wd].iter().sum::<f32>();
                }
            }
        }
        {
            let (_, gw) = arena.pg_mut(self.w);
            for n in 0..batch {
                for oc in 0..self.out_ch {
                    let ybase = ((n * self.out_ch) + oc) * h * wd;
                    for ic in 0..self.in_ch {
                        let xbase = ((n * self.in_ch) + ic) * h * wd;
                        let wbase = ((oc * self.in_ch) + ic) * K * K;
                        for ky in 0..K {
                            for kx in 0..K {
                                let dyk = ky as isize - PAD;
                                let dxk = kx as isize - PAD;
                                let y0 = (-dyk).max(0) as usize;
                                let y1 = (h as isize - dyk).min(h as isize) as usize;
                                let x0 = (-dxk).max(0) as usize;
                                let x1 = (wd as isize - dxk).min(wd as isize) as usize;
                                let mut acc = 0.0f32;
                                for iy in y0..y1 {
                                    let sy = (iy as isize + dyk) as usize;
                                    let yrow = ybase + iy * wd;
                                    let xrow = xbase + sy * wd;
                                    for ix in x0..x1 {
                                        let sx = (ix as isize + dxk) as usize;
                                        acc += dy[yrow + ix] * x[xrow + sx];
                                    }
                                }
                                gw[wbase + ky * K + kx] += acc;
                            }
                        }
                    }
                }
            }
        }
        let weights = arena.p(self.w);
        for n in 0..batch {
            for oc in 0..self.out_ch {
                let ybase = ((n * self.out_ch) + oc) * h * wd;
                for ic in 0..self.in_ch {
                    let xbase = ((n * self.in_ch) + ic) * h * wd;
                    let wbase = ((oc * self.in_ch) + ic) * K * K;
                    for ky in 0..K {
                        for kx in 0..K {
                            let wv = weights[wbase + ky * K + kx];
                            if wv == 0.0 {
                                continue;
                            }
                            let dyk = ky as isize - PAD;
                            let dxk = kx as isize - PAD;
                            let y0 = (-dyk).max(0) as usize;
                            let y1 = (h as isize - dyk).min(h as isize) as usize;
                            let x0 = (-dxk).max(0) as usize;
                            let x1 = (wd as isize - dxk).min(wd as isize) as usize;
                            for iy in y0..y1 {
                                let sy = (iy as isize + dyk) as usize;
                                let yrow = ybase + iy * wd;
                                let xrow = xbase + sy * wd;
                                for ix in x0..x1 {
                                    let sx = (ix as isize + dxk) as usize;
                                    dx[xrow + sx] += dy[yrow + ix] * wv;
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }
}

/// 2×2 max pooling with stride 2. Input `[batch, ch, h, w]` (h, w even), output
/// `[batch, ch, h/2, w/2]`; also returns the argmax indexes for backward.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaxPool2d;

impl MaxPool2d {
    /// Forward pooling; returns the pooled map and argmax indexes for backward.
    pub fn forward(x: &[f32], batch: usize, ch: usize, h: usize, w: usize) -> (Vec<f32>, Vec<u32>) {
        debug_assert!(h.is_multiple_of(2) && w.is_multiple_of(2));
        let (oh, ow) = (h / 2, w / 2);
        let mut y = vec![0.0f32; batch * ch * oh * ow];
        let mut arg = vec![0u32; y.len()];
        for nc in 0..batch * ch {
            let xb = nc * h * w;
            let yb = nc * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let i = xb + (2 * oy + dy) * w + 2 * ox + dx;
                            if x[i] > best {
                                best = x[i];
                                best_i = i;
                            }
                        }
                    }
                    y[yb + oy * ow + ox] = best;
                    arg[yb + oy * ow + ox] = best_i as u32;
                }
            }
        }
        (y, arg)
    }

    /// Scatter the pooled gradient back to the argmax positions.
    pub fn backward(dy: &[f32], arg: &[u32], input_len: usize) -> Vec<f32> {
        let mut dx = vec![0.0f32; input_len];
        for (d, &a) in dy.iter().zip(arg) {
            dx[a as usize] += d;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;

    #[test]
    fn identity_kernel_passes_through() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(&mut arena, &mut rng, 1, 1);
        // Set kernel to the identity (center = 1).
        let w = arena.params_mut();
        w[..9].fill(0.0);
        w[4] = 1.0;
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let y = conv.forward(&arena, &x, 1, 4, 4);
        assert_eq!(y, x);
    }

    #[test]
    fn shift_kernel_respects_padding() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::new(&mut arena, &mut rng, 1, 1);
        // Kernel that copies the pixel to the left (kx=0, ky=1).
        let w = arena.params_mut();
        w[..9].fill(0.0);
        w[3] = 1.0;
        let x = vec![1.0f32, 2.0, 3.0, 4.0]; // 2×2
        let y = conv.forward(&arena, &x, 1, 2, 2);
        // Leftmost column sees zero padding.
        assert_eq!(y, vec![0.0, 1.0, 0.0, 3.0]);
    }

    #[test]
    fn conv_gradients_match_numerical() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv2d::new(&mut arena, &mut rng, 2, 2);
        let x: Vec<f32> = (0..2 * 4 * 4).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1).collect();

        // Loss = ½ Σ y².
        let mut loss_fn = |a: &Arena| {
            let y = conv.forward(a, &x, 1, 4, 4);
            y.iter().map(|&v| 0.5 * (v as f64) * (v as f64)).sum()
        };
        let y = conv.forward(&arena, &x, 1, 4, 4);
        arena.zero_grads();
        let dx = conv.backward(&mut arena, &x, &y, 1, 4, 4);
        let analytic = arena.grads().to_vec();
        check_param_grads(&mut arena, &mut loss_fn, &analytic, 2e-2);

        // Input gradient too.
        let eps = 1e-2f32;
        for i in (0..x.len()).step_by(7) {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let fp: f64 = conv
                .forward(&arena, &xp, 1, 4, 4)
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let fm: f64 = conv
                .forward(&arena, &xm, 1, 4, 4)
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx[i]).abs() < 2e-2 * 1.0f32.max(num.abs()),
                "i={i}: {num} vs {}",
                dx[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_backward() {
        let x = vec![
            1.0f32, 2.0, 5.0, 6.0, //
            3.0, 4.0, 8.0, 7.0, //
            0.1, 0.2, 0.3, 0.4, //
            0.5, 0.9, 0.8, 0.7,
        ];
        let (y, arg) = MaxPool2d::forward(&x, 1, 1, 4, 4);
        assert_eq!(y, vec![4.0, 8.0, 0.9, 0.8]);
        let dx = MaxPool2d::backward(&[1.0, 2.0, 3.0, 4.0], &arg, x.len());
        assert_eq!(dx[5], 1.0); // position of 4.0
        assert_eq!(dx[6], 2.0); // position of 8.0
        assert_eq!(dx[13], 3.0); // position of 0.9
        assert_eq!(dx[14], 4.0); // position of 0.8
        assert_eq!(dx.iter().sum::<f32>(), 10.0);
    }
}
