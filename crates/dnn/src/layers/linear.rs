//! Fully connected layer.

use crate::arena::{Arena, Slot};
use crate::ops::{add_bias, bias_grad, matmul_acc, matmul_acc_wt, matmul_acc_xt};
use rand::prelude::*;

/// `y = x·W + b`, W: `[in_dim, out_dim]` row-major, b: `[out_dim]`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    /// Input features.
    pub in_dim: usize,
    /// Output features.
    pub out_dim: usize,
    w: Slot,
    b: Slot,
}

impl Linear {
    /// Kaiming-uniform init: `bound = sqrt(6 / in_dim)`.
    pub fn new(arena: &mut Arena, rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Self {
        let bound = (6.0 / in_dim as f32).sqrt();
        let w = arena.alloc_uniform(in_dim * out_dim, bound, rng);
        let b = arena.alloc_zeros(out_dim);
        Self { in_dim, out_dim, w, b }
    }

    /// `x`: `[batch, in_dim]` → returns `[batch, out_dim]`.
    pub fn forward(&self, arena: &Arena, x: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(x.len(), batch * self.in_dim);
        let mut y = vec![0.0f32; batch * self.out_dim];
        matmul_acc(x, arena.p(self.w), &mut y, batch, self.in_dim, self.out_dim);
        add_bias(&mut y, arena.p(self.b), batch, self.out_dim);
        y
    }

    /// Accumulates weight/bias grads; returns `dx` (`[batch, in_dim]`).
    pub fn backward(&self, arena: &mut Arena, x: &[f32], dy: &[f32], batch: usize) -> Vec<f32> {
        debug_assert_eq!(dy.len(), batch * self.out_dim);
        {
            let (_, gw) = arena.pg_mut(self.w);
            matmul_acc_xt(x, dy, gw, batch, self.in_dim, self.out_dim);
        }
        {
            let (_, gb) = arena.pg_mut(self.b);
            bias_grad(dy, gb, batch, self.out_dim);
        }
        let mut dx = vec![0.0f32; batch * self.in_dim];
        matmul_acc_wt(dy, arena.p(self.w), &mut dx, batch, self.in_dim, self.out_dim);
        dx
    }

    /// Arena slot of the weight matrix.
    pub fn weight_slot(&self) -> Slot {
        self.w
    }

    /// Arena slot of the bias vector.
    pub fn bias_slot(&self) -> Slot {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::check_param_grads;
    use crate::ops::softmax_xent;

    #[test]
    fn forward_shape_and_bias() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut arena, &mut rng, 3, 2);
        // Overwrite params with known values.
        arena.params_mut()[..6].copy_from_slice(&[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        arena.params_mut()[6..8].copy_from_slice(&[0.5, -0.5]);
        let y = lin.forward(&arena, &[1.0, 2.0, 3.0], 1);
        // y0 = 1·1 + 2·0 + 3·1 + 0.5 = 4.5 ; y1 = 1·0 + 2·1 + 3·1 − 0.5 = 4.5
        assert_eq!(y, vec![4.5, 4.5]);
    }

    #[test]
    fn gradients_match_numerical() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut arena, &mut rng, 4, 3);
        let x = [0.2f32, -0.4, 0.1, 0.9, -0.3, 0.7, 0.5, -0.8];
        let targets = [1u32, 2];

        let mut loss_fn = |a: &Arena| {
            let y = lin.forward(a, &x, 2);
            let mut dl = vec![0.0f32; y.len()];
            softmax_xent(&y, &targets, &mut dl, 2, 3, 1.0).0
        };

        // Analytic gradients.
        let y = lin.forward(&arena, &x, 2);
        let mut dl = vec![0.0f32; y.len()];
        softmax_xent(&y, &targets, &mut dl, 2, 3, 1.0);
        arena.zero_grads();
        lin.backward(&mut arena, &x, &dl, 2);
        let analytic = arena.grads().to_vec();

        check_param_grads(&mut arena, &mut loss_fn, &analytic, 2e-2);
    }

    #[test]
    fn input_gradient_matches_numerical() {
        let mut arena = Arena::new();
        let mut rng = StdRng::seed_from_u64(4);
        let lin = Linear::new(&mut arena, &mut rng, 3, 2);
        let x = [0.3f32, -0.2, 0.8];
        let targets = [0u32];

        let y = lin.forward(&arena, &x, 1);
        let mut dl = vec![0.0f32; 2];
        softmax_xent(&y, &targets, &mut dl, 1, 2, 1.0);
        arena.zero_grads();
        let dx = lin.backward(&mut arena, &x, &dl, 1);

        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let mut scratch = vec![0.0f32; 2];
            let fp =
                softmax_xent(&lin.forward(&arena, &xp, 1), &targets, &mut scratch, 1, 2, 1.0).0;
            let fm =
                softmax_xent(&lin.forward(&arena, &xm, 1), &targets, &mut scratch, 1, 2, 1.0).0;
            let num = ((fp - fm) / (2.0 * eps as f64)) as f32;
            assert!((num - dx[i]).abs() < 1e-3, "i={i}: {num} vs {}", dx[i]);
        }
    }
}
