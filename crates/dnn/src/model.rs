//! The interface the distributed trainer drives.

/// Result of one forward+backward pass over a batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrainStats {
    /// Sum of per-example (or per-scored-token) losses.
    pub loss: f64,
    /// Correct argmax predictions.
    pub correct: usize,
    /// Number of scored predictions (examples or tokens).
    pub count: usize,
}

/// Result of a forward-only evaluation pass.
pub type EvalStats = TrainStats;

impl TrainStats {
    /// Mean loss per scored prediction.
    pub fn mean_loss(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.loss / self.count as f64
        }
    }

    /// Fraction of correct argmax predictions.
    pub fn accuracy(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f64 / self.count as f64
        }
    }

    /// Error rate = 1 − accuracy; for the LSTM task this is the WER proxy.
    pub fn error_rate(&self) -> f64 {
        1.0 - self.accuracy()
    }

    /// Accumulate another batch's statistics.
    pub fn merge(&mut self, other: &TrainStats) {
        self.loss += other.loss;
        self.correct += other.correct;
        self.count += other.count;
    }
}

/// A trainable model with flat parameter/gradient storage.
///
/// The gradient of the whole model is a single dense slice — the input of every
/// allreduce scheme in this workspace — and parameter updates are plain slice
/// mutations (dense) or scatters (sparse).
pub trait Model {
    /// Task-specific batch type (images, token sequences, masked sequences…).
    type Batch;

    /// Total parameter count.
    fn num_params(&self) -> usize;
    /// The flat parameter vector.
    fn params(&self) -> &[f32];
    /// Mutable flat parameter vector (for optimizers / sparse updates).
    fn params_mut(&mut self) -> &mut [f32];
    /// The flat gradient vector (input of every allreduce).
    fn grads(&self) -> &[f32];
    /// Reset all gradients to zero.
    fn zero_grads(&mut self);

    /// Forward + backward on one batch; gradients *accumulate* into the arena
    /// (callers zero them between iterations).
    fn forward_backward(&mut self, batch: &Self::Batch) -> TrainStats;

    /// Forward-only evaluation.
    fn evaluate(&self, batch: &Self::Batch) -> EvalStats;
}
