//! Seeded synthetic datasets standing in for Cifar-10, AN4 and Wikipedia.
//!
//! Every dataset is a deterministic function `index → sample`, so data-parallel
//! workers can shard the index space without any coordination, runs are exactly
//! reproducible, and the train/test split is just two disjoint index ranges.
//!
//! The datasets are synthetic but *learnable with an error floor*: images are class
//! templates plus Gaussian-ish noise; sequences follow a seeded Markov chain whose
//! entropy lower-bounds the next-token error (the WER-proxy); masked-LM streams add
//! Zipfian unigram weights on top of bigram structure. Convergence curves therefore
//! have the familiar shape — fast early progress, noisy plateau — which is what the
//! §5.4 comparisons (Ok-Topk ≈ Dense accuracy) need.

use rand::prelude::*;

/// Offset separating test indexes from train indexes.
const TEST_OFFSET: u64 = 1 << 40;

/// A batch of images: `pixels` is `[batch, channels·h·w]` row-major.
#[derive(Clone, Debug)]
pub struct ImageBatch {
    /// Row-major `[batch, channels·h·w]` pixel data.
    pub pixels: Vec<f32>,
    /// Class labels, one per image.
    pub labels: Vec<u32>,
    /// Number of images in the batch.
    pub batch: usize,
}

/// A batch of token sequences with next-token targets: both `[batch, seq]`.
#[derive(Clone, Debug)]
pub struct SeqBatch {
    /// Input tokens, `[batch, seq]` row-major.
    pub tokens: Vec<u32>,
    /// Per-position targets (next token, or masked original / IGNORE).
    pub targets: Vec<u32>,
    /// Number of sequences in the batch.
    pub batch: usize,
    /// Sequence length.
    pub seq: usize,
}

/// Cifar-10 stand-in: 10 class templates (3×16×16) + per-sample noise.
#[derive(Clone, Debug)]
pub struct SyntheticImages {
    templates: Vec<Vec<f32>>,
    /// Number of classes (templates).
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height = width.
    pub hw: usize,
    noise: f32,
    seed: u64,
}

impl SyntheticImages {
    /// Default Cifar-10-like shape: 10 classes of 3×16×16 images.
    pub fn new(seed: u64) -> Self {
        Self::with_shape(seed, 10, 3, 16, 0.6)
    }

    /// Fully parameterized constructor (class count, image shape, noise level).
    pub fn with_shape(seed: u64, classes: usize, channels: usize, hw: usize, noise: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let templates = (0..classes)
            .map(|_| (0..channels * hw * hw).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        Self { templates, classes, channels, hw, noise, seed }
    }

    /// Flattened pixel count per image.
    pub fn pixels_per_image(&self) -> usize {
        self.channels * self.hw * self.hw
    }

    fn sample(&self, index: u64) -> (Vec<f32>, u32) {
        let label = (index % self.classes as u64) as u32;
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        let pixels = self.templates[label as usize]
            .iter()
            .map(|&t| t + self.noise * (rng.gen_range(-1.0f32..1.0) + rng.gen_range(-1.0f32..1.0)))
            .collect();
        (pixels, label)
    }

    fn batch_at(&self, start: u64, batch: usize) -> ImageBatch {
        let mut pixels = Vec::with_capacity(batch * self.pixels_per_image());
        let mut labels = Vec::with_capacity(batch);
        for i in 0..batch as u64 {
            let (p, l) = self.sample(start + i);
            pixels.extend_from_slice(&p);
            labels.push(l);
        }
        ImageBatch { pixels, labels, batch }
    }

    /// Training batch `b` for worker `rank` of `world` (disjoint shards).
    pub fn train_batch(&self, iter: u64, rank: usize, world: usize, batch: usize) -> ImageBatch {
        let start = (iter * world as u64 + rank as u64) * batch as u64;
        self.batch_at(start, batch)
    }

    /// Deterministic held-out batch (disjoint from all training indexes).
    pub fn test_batch(&self, block: u64, batch: usize) -> ImageBatch {
        self.batch_at(TEST_OFFSET + block * batch as u64, batch)
    }
}

/// Seeded Markov chain over `vocab` tokens; shared by the AN4 and Wikipedia
/// stand-ins. Each token has a few preferred successors, so the chain is learnable
/// but stochastic (non-zero error floor).
#[derive(Clone, Debug)]
struct MarkovChain {
    vocab: usize,
    /// `[vocab, vocab]` row-stochastic transition matrix (CDF rows for sampling).
    cdf: Vec<f32>,
    seed: u64,
}

impl MarkovChain {
    fn new(seed: u64, vocab: usize, peakedness: f32) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cdf = vec![0.0f32; vocab * vocab];
        for t in 0..vocab {
            // Two preferred successors get most of the mass; the rest is uniform.
            let a = rng.gen_range(0..vocab);
            let b = rng.gen_range(0..vocab);
            let mut probs = vec![(1.0 - peakedness) / vocab as f32; vocab];
            probs[a] += peakedness * 0.65;
            probs[b] += peakedness * 0.35;
            let mut acc = 0.0f32;
            for (j, p) in probs.iter().enumerate() {
                acc += p;
                cdf[t * vocab + j] = acc;
            }
            cdf[t * vocab + vocab - 1] = 1.0;
        }
        Self { vocab, cdf, seed }
    }

    fn walk(&self, index: u64, len: usize) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0xD1B54A32D192ED03));
        let mut t = (rng.gen::<u64>() % self.vocab as u64) as usize;
        let mut out = Vec::with_capacity(len);
        out.push(t as u32);
        for _ in 1..len {
            let u: f32 = rng.gen();
            let row = &self.cdf[t * self.vocab..(t + 1) * self.vocab];
            t = row.partition_point(|&c| c < u).min(self.vocab - 1);
            out.push(t as u32);
        }
        out
    }
}

/// AN4 stand-in: next-token prediction over a Markov chain; the per-token argmax
/// error rate on held-out data is the WER proxy.
#[derive(Clone, Debug)]
pub struct SyntheticSequences {
    chain: MarkovChain,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
}

impl SyntheticSequences {
    /// Default AN4-like shape: vocabulary 24, sequences of 20 tokens.
    pub fn new(seed: u64) -> Self {
        Self::with_shape(seed, 24, 20, 0.85)
    }

    /// Fully parameterized constructor; `peakedness` sets how deterministic the chain is.
    pub fn with_shape(seed: u64, vocab: usize, seq: usize, peakedness: f32) -> Self {
        Self { chain: MarkovChain::new(seed, vocab, peakedness), vocab, seq }
    }

    fn batch_at(&self, start: u64, batch: usize) -> SeqBatch {
        let mut tokens = Vec::with_capacity(batch * self.seq);
        let mut targets = Vec::with_capacity(batch * self.seq);
        for i in 0..batch as u64 {
            let walk = self.chain.walk(start + i, self.seq + 1);
            tokens.extend_from_slice(&walk[..self.seq]);
            targets.extend_from_slice(&walk[1..]);
        }
        SeqBatch { tokens, targets, batch, seq: self.seq }
    }

    /// Training batch `iter` for worker `rank` of `world` (disjoint shards).
    /// Training batch `iter` for worker `rank` of `world` (disjoint shards).
    pub fn train_batch(&self, iter: u64, rank: usize, world: usize, batch: usize) -> SeqBatch {
        let start = (iter * world as u64 + rank as u64) * batch as u64;
        self.batch_at(start, batch)
    }

    /// Deterministic held-out batch (disjoint from all training indexes).
    pub fn test_batch(&self, block: u64, batch: usize) -> SeqBatch {
        self.batch_at(TEST_OFFSET + block * batch as u64, batch)
    }
}

/// Wikipedia masked-LM stand-in: Markov-chain token streams with 15% of positions
/// masked; targets are [`crate::ops::IGNORE`] everywhere else. The last vocab id is
/// reserved as the `[MASK]` token.
#[derive(Clone, Debug)]
pub struct SyntheticMaskedLm {
    chain: MarkovChain,
    /// Vocabulary size (the last id is reserved for `[MASK]`).
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Probability that a position is masked (and scored).
    pub mask_prob: f64,
    seed: u64,
}

impl SyntheticMaskedLm {
    /// Default Wikipedia-MLM-like shape: vocabulary 64, sequence 16, 15% masking.
    pub fn new(seed: u64) -> Self {
        Self::with_shape(seed, 64, 16, 0.15)
    }

    /// Fully parameterized constructor.
    pub fn with_shape(seed: u64, vocab: usize, seq: usize, mask_prob: f64) -> Self {
        assert!(vocab >= 4);
        // Content tokens use ids 0..vocab-1; vocab-1 is [MASK].
        Self { chain: MarkovChain::new(seed, vocab - 1, 0.8), vocab, seq, mask_prob, seed }
    }

    /// The reserved `[MASK]` token id (last vocabulary entry).
    pub fn mask_token(&self) -> u32 {
        (self.vocab - 1) as u32
    }

    fn batch_at(&self, start: u64, batch: usize) -> SeqBatch {
        let mut tokens = Vec::with_capacity(batch * self.seq);
        let mut targets = Vec::with_capacity(batch * self.seq);
        for i in 0..batch as u64 {
            let walk = self.chain.walk(start + i, self.seq);
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (start + i).wrapping_mul(0xA24BAED4963EE407));
            let mut masked_any = false;
            let base = tokens.len();
            for &t in &walk {
                if rng.gen_bool(self.mask_prob) {
                    tokens.push(self.mask_token());
                    targets.push(t);
                    masked_any = true;
                } else {
                    tokens.push(t);
                    targets.push(crate::ops::IGNORE);
                }
            }
            if !masked_any {
                // Guarantee at least one scored position per sequence.
                let pos = (rng.gen::<u64>() % self.seq as u64) as usize;
                targets[base + pos] = walk[pos];
                tokens[base + pos] = self.mask_token();
            }
        }
        SeqBatch { tokens, targets, batch, seq: self.seq }
    }

    /// Training batch `iter` for worker `rank` of `world` (disjoint shards).
    pub fn train_batch(&self, iter: u64, rank: usize, world: usize, batch: usize) -> SeqBatch {
        let start = (iter * world as u64 + rank as u64) * batch as u64;
        self.batch_at(start, batch)
    }

    /// Deterministic held-out batch (disjoint from all training indexes).
    /// Deterministic held-out batch (disjoint from all training indexes).
    pub fn test_batch(&self, block: u64, batch: usize) -> SeqBatch {
        self.batch_at(TEST_OFFSET + block * batch as u64, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::IGNORE;

    #[test]
    fn images_are_deterministic_and_sharded() {
        let d = SyntheticImages::new(3);
        let a = d.train_batch(5, 1, 4, 8);
        let b = d.train_batch(5, 1, 4, 8);
        assert_eq!(a.pixels, b.pixels);
        assert_eq!(a.labels, b.labels);
        // Different rank → different samples.
        let c = d.train_batch(5, 2, 4, 8);
        assert_ne!(a.pixels, c.pixels);
        // Test batch disjoint from training (different content).
        let t = d.test_batch(0, 8);
        assert_ne!(a.pixels, t.pixels);
    }

    #[test]
    fn image_labels_cycle_through_classes() {
        let d = SyntheticImages::new(1);
        let b = d.train_batch(0, 0, 1, 20);
        assert_eq!(&b.labels[..10], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn same_class_samples_correlate() {
        // Two samples of class 0 must be closer to each other than to class 5.
        let d = SyntheticImages::new(7);
        let b = d.train_batch(0, 0, 1, 20);
        let ppi = d.pixels_per_image();
        let img = |i: usize| &b.pixels[i * ppi..(i + 1) * ppi];
        let dist =
            |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let same = dist(img(0), img(10)); // both class 0
        let diff = dist(img(0), img(5)); // class 0 vs class 5
        assert!(same < diff, "same={same} diff={diff}");
    }

    #[test]
    fn sequences_targets_are_shifted_tokens() {
        let d = SyntheticSequences::new(11);
        let b = d.train_batch(0, 0, 1, 4);
        for s in 0..4 {
            for j in 0..d.seq - 1 {
                assert_eq!(b.targets[s * d.seq + j], b.tokens[s * d.seq + j + 1]);
            }
        }
    }

    #[test]
    fn markov_chain_is_predictable_but_not_trivially() {
        // The most likely successor should dominate but not saturate.
        let d = SyntheticSequences::new(13);
        let mut counts = std::collections::HashMap::new();
        for i in 0..200u64 {
            let b = d.batch_at(i, 1);
            for j in 0..d.seq - 1 {
                *counts.entry((b.tokens[j], b.tokens[j + 1])).or_insert(0usize) += 1;
            }
        }
        // For the most common source token, its best successor should account for
        // 40–90% of transitions.
        let mut by_src: std::collections::HashMap<u32, Vec<usize>> = Default::default();
        for ((s, _t), c) in &counts {
            by_src.entry(*s).or_default().push(*c);
        }
        let (_, best) =
            by_src.iter().max_by_key(|(_, v)| v.iter().sum::<usize>()).expect("some transitions");
        let total: usize = best.iter().sum();
        let max = *best.iter().max().expect("non-empty");
        let frac = max as f64 / total as f64;
        assert!(frac > 0.35 && frac < 0.95, "frac={frac}");
    }

    #[test]
    fn masked_lm_masks_scored_positions_only() {
        let d = SyntheticMaskedLm::new(17);
        let b = d.train_batch(0, 0, 1, 16);
        let mut scored = 0usize;
        for j in 0..b.tokens.len() {
            if b.targets[j] != IGNORE {
                scored += 1;
                assert_eq!(b.tokens[j], d.mask_token());
                assert!(b.targets[j] < d.mask_token());
            } else {
                assert_ne!(b.tokens[j], d.mask_token());
            }
        }
        // ~15% of 256 positions, with at least one per sequence.
        assert!(scored >= 16 && scored < 100, "scored={scored}");
    }
}
