//! BertLite: a small pre-LN transformer encoder with a masked-LM head (the BERT
//! stand-in). Token + learned positional embeddings, 2 encoder blocks
//! (LN → MHA → residual; LN → FFN → residual), final LN, vocab projection;
//! loss is cross-entropy on masked positions only.

use crate::arena::{Arena, Slot};
use crate::data::SeqBatch;
use crate::layers::{Embedding, LayerNorm, Linear, MultiHeadAttention};
use crate::model::{EvalStats, Model, TrainStats};
use crate::ops::{relu_backward, relu_inplace, softmax_xent, IGNORE};
use rand::prelude::*;

struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

/// The BERT / Wikipedia masked-LM stand-in (see module docs).
pub struct BertLite {
    arena: Arena,
    embed: Embedding,
    pos: Slot,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
    head: Linear,
    /// Vocabulary size (last id is `[MASK]`).
    pub vocab: usize,
    /// Embedding/model dimension.
    pub d_model: usize,
    /// (Maximum) sequence length.
    pub seq: usize,
}

impl BertLite {
    /// Default width (≈77k parameters): vocab 64, d_model 64, 4 heads, 2 blocks.
    pub fn new(seed: u64) -> Self {
        Self::with_width(seed, 64, 64, 4, 2, 128, 16)
    }

    /// Fully parameterized constructor.
    pub fn with_width(
        seed: u64,
        vocab: usize,
        d_model: usize,
        heads: usize,
        depth: usize,
        ff: usize,
        seq: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = Arena::new();
        let embed = Embedding::new(&mut arena, &mut rng, vocab, d_model);
        let pos = arena.alloc_uniform(seq * d_model, 0.05, &mut rng);
        let blocks = (0..depth)
            .map(|_| Block {
                ln1: LayerNorm::init(&mut arena, d_model),
                attn: MultiHeadAttention::new(&mut arena, &mut rng, d_model, heads),
                ln2: LayerNorm::init(&mut arena, d_model),
                ff1: Linear::new(&mut arena, &mut rng, d_model, ff),
                ff2: Linear::new(&mut arena, &mut rng, ff, d_model),
            })
            .collect();
        let ln_f = LayerNorm::init(&mut arena, d_model);
        let head = Linear::new(&mut arena, &mut rng, d_model, vocab);
        Self { arena, embed, pos, blocks, ln_f, head, vocab, d_model, seq }
    }

    fn embed_input(&self, batch: &SeqBatch) -> Vec<f32> {
        let d = self.d_model;
        let mut x = self.embed.forward(&self.arena, &batch.tokens);
        let pos = self.arena.p(self.pos);
        for bi in 0..batch.batch {
            for t in 0..batch.seq {
                let row = &mut x[(bi * batch.seq + t) * d..(bi * batch.seq + t + 1) * d];
                for (v, &p) in row.iter_mut().zip(&pos[t * d..(t + 1) * d]) {
                    *v += p;
                }
            }
        }
        x
    }
}

/// Per-block forward cache. The residual streams themselves need no caching:
/// their backward is the identity added onto the branch gradients.
struct BlockCache {
    ln1_cache: crate::layers::norm::LnCache,
    ln1_out: Vec<f32>,
    attn_cache: crate::layers::attention::AttnCache,
    ln2_cache: crate::layers::norm::LnCache,
    ln2_out: Vec<f32>,
    hidden: Vec<f32>,
}

impl BertLite {
    fn forward_full(
        &self,
        batch: &SeqBatch,
    ) -> (Vec<f32>, Vec<BlockCache>, Vec<f32>, crate::layers::norm::LnCache) {
        let rows = batch.batch * batch.seq;
        let mut x = self.embed_input(batch);
        let mut caches = Vec::with_capacity(self.blocks.len());
        for blk in &self.blocks {
            let (ln1_out, ln1_cache) = blk.ln1.forward(&self.arena, &x, rows);
            let (attn_out, attn_cache) =
                blk.attn.forward(&self.arena, &ln1_out, batch.batch, batch.seq);
            let mut x_mid = x.clone();
            for (a, b) in x_mid.iter_mut().zip(&attn_out) {
                *a += b;
            }
            let (ln2_out, ln2_cache) = blk.ln2.forward(&self.arena, &x_mid, rows);
            let mut hidden = blk.ff1.forward(&self.arena, &ln2_out, rows);
            relu_inplace(&mut hidden);
            let ff_out = blk.ff2.forward(&self.arena, &hidden, rows);
            let mut x_next = x_mid.clone();
            for (a, b) in x_next.iter_mut().zip(&ff_out) {
                *a += b;
            }
            x = x_next;
            let _ = x_mid;
            caches.push(BlockCache { ln1_cache, ln1_out, attn_cache, ln2_cache, ln2_out, hidden });
        }
        let (final_out, ln_f_cache) = self.ln_f.forward(&self.arena, &x, rows);
        (final_out, caches, x, ln_f_cache)
    }
}

impl Model for BertLite {
    type Batch = SeqBatch;

    fn num_params(&self) -> usize {
        self.arena.len()
    }

    fn params(&self) -> &[f32] {
        self.arena.params()
    }

    fn params_mut(&mut self) -> &mut [f32] {
        self.arena.params_mut()
    }

    fn grads(&self) -> &[f32] {
        self.arena.grads()
    }

    fn zero_grads(&mut self) {
        self.arena.zero_grads();
    }

    fn forward_backward(&mut self, batch: &SeqBatch) -> TrainStats {
        let rows = batch.batch * batch.seq;
        let d = self.d_model;
        let (final_out, caches, _x_last, ln_f_cache) = self.forward_full(batch);
        let logits = self.head.forward(&self.arena, &final_out, rows);

        let scored = batch.targets.iter().filter(|&&t| t != IGNORE).count().max(1);
        let mut dlogits = vec![0.0f32; logits.len()];
        let (loss, correct) = softmax_xent(
            &logits,
            &batch.targets,
            &mut dlogits,
            rows,
            self.vocab,
            1.0 / scored as f32,
        );

        let d_final = self.head.backward(&mut self.arena, &final_out, &dlogits, rows);
        let mut dx = self.ln_f.backward(&mut self.arena, &ln_f_cache, &d_final, rows);

        for (blk, cache) in self.blocks.iter().zip(&caches).rev() {
            // FFN branch.
            let mut d_hidden = blk.ff2.backward(&mut self.arena, &cache.hidden, &dx, rows);
            relu_backward(&mut d_hidden, &cache.hidden);
            let d_ln2_out = blk.ff1.backward(&mut self.arena, &cache.ln2_out, &d_hidden, rows);
            let d_x_mid_ln = blk.ln2.backward(&mut self.arena, &cache.ln2_cache, &d_ln2_out, rows);
            let mut d_x_mid = dx; // residual path
            for (a, b) in d_x_mid.iter_mut().zip(&d_x_mid_ln) {
                *a += b;
            }
            // Attention branch.
            let d_ln1_out = blk.attn.backward(
                &mut self.arena,
                &cache.ln1_out,
                &cache.attn_cache,
                &d_x_mid,
                batch.batch,
                batch.seq,
            );
            let d_x_ln = blk.ln1.backward(&mut self.arena, &cache.ln1_cache, &d_ln1_out, rows);
            let mut d_x = d_x_mid;
            for (a, b) in d_x.iter_mut().zip(&d_x_ln) {
                *a += b;
            }
            dx = d_x;
        }

        // Embedding + positional gradients.
        self.embed.backward(&mut self.arena, &batch.tokens, &dx);
        {
            let (_, gpos) = self.arena.pg_mut(self.pos);
            for bi in 0..batch.batch {
                for t in 0..batch.seq {
                    let row = &dx[(bi * batch.seq + t) * d..(bi * batch.seq + t + 1) * d];
                    for (g, &v) in gpos[t * d..(t + 1) * d].iter_mut().zip(row) {
                        *g += v;
                    }
                }
            }
        }

        TrainStats { loss, correct, count: scored }
    }

    fn evaluate(&self, batch: &SeqBatch) -> EvalStats {
        let rows = batch.batch * batch.seq;
        let (final_out, _, _, _) = self.forward_full(batch);
        let logits = self.head.forward(&self.arena, &final_out, rows);
        let scored = batch.targets.iter().filter(|&&t| t != IGNORE).count();
        let mut scratch = vec![0.0f32; logits.len()];
        let (loss, correct) =
            softmax_xent(&logits, &batch.targets, &mut scratch, rows, self.vocab, 1.0);
        EvalStats { loss, correct, count: scored }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticMaskedLm;

    #[test]
    fn param_count_in_expected_range() {
        let m = BertLite::new(0);
        // ≈ 77k parameters (embeddings + 2 blocks + head); exact value asserted so
        // accidental architecture changes are caught.
        let expect = 64 * 64 // token embedding
            + 16 * 64 // positional
            + 2 * (2 * 128 // two LayerNorms
                + 4 * (64 * 64 + 64) // q,k,v,o
                + 64 * 128 + 128 // ff1
                + 128 * 64 + 64) // ff2
            + 128 // final LN
            + 64 * 64 + 64; // head
        assert_eq!(m.num_params(), expect);
    }

    #[test]
    fn gradients_flow_to_all_parameter_groups() {
        let mut m = BertLite::new(3);
        let data = SyntheticMaskedLm::new(4);
        let b = data.train_batch(0, 0, 1, 4);
        m.zero_grads();
        let stats = m.forward_backward(&b);
        assert!(stats.loss.is_finite() && stats.count > 0);
        let g = m.grads();
        assert!(g.iter().all(|v| v.is_finite()));
        // Every major slot should receive gradient somewhere.
        let nnz = g.iter().filter(|v| **v != 0.0).count();
        assert!(nnz > m.num_params() / 4, "too-sparse gradient: {nnz}/{}", m.num_params());
    }

    #[test]
    fn loss_decreases_with_adam() {
        // A reduced-width instance so the test is fast in debug builds; full-size
        // BertLite convergence is exercised by the fig13 harness in release mode.
        let mut m = BertLite::with_width(5, 16, 32, 2, 1, 64, 12);
        let data = SyntheticMaskedLm::with_shape(6, 16, 12, 0.2);
        let mut opt = crate::optim::Adam::new(5e-3, 0.9, 0.999, 1e-8, 0.0, m.num_params());
        let before = m.evaluate(&data.test_batch(0, 16)).mean_loss();
        // The loss plateaus near unigram entropy (≈2.5) for a long stretch before
        // attention locks onto the bigram structure; 400 iterations clears that
        // plateau with margin at this width.
        for it in 0..400 {
            let b = data.train_batch(it, 0, 1, 16);
            m.zero_grads();
            m.forward_backward(&b);
            let g = m.grads().to_vec();
            opt.step(m.params_mut(), &g);
        }
        let after = m.evaluate(&data.test_batch(0, 16)).mean_loss();
        // Chance level is ln(15) ≈ 2.71; the model must clearly beat it.
        assert!(
            after < before * 0.8 && after < 2.5,
            "masked-LM loss did not improve: {before} -> {after}"
        );
    }
}
