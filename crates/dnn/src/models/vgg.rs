//! VggLite: a compact VGG-style convolutional classifier (the VGG-16 stand-in).
//!
//! conv3×3(3→16) → ReLU → maxpool → conv3×3(16→32) → ReLU → maxpool →
//! fc(512→128) → ReLU → fc(128→classes), on 3×16×16 inputs. ≈72k parameters —
//! small enough to train many data-parallel replicas on one CPU, large enough for
//! realistic gradient sparsity structure.

use crate::arena::Arena;
use crate::data::ImageBatch;
use crate::layers::{Conv2d, Linear, MaxPool2d};
use crate::model::{EvalStats, Model, TrainStats};
use crate::ops::{relu_backward, relu_inplace, softmax_xent};
use rand::prelude::*;

/// The VGG-16 stand-in (see module docs).
pub struct VggLite {
    arena: Arena,
    conv1: Conv2d,
    conv2: Conv2d,
    fc1: Linear,
    fc2: Linear,
    /// Number of output classes.
    pub classes: usize,
    hw: usize,
}

impl VggLite {
    /// All replicas constructed with the same `seed` start identical.
    /// Default width (≈72k parameters), 3×16×16 inputs, 10 classes.
    pub fn new(seed: u64) -> Self {
        Self::with_width(seed, 16, 32, 128, 10, 16)
    }

    /// Fully parameterized constructor (channel widths, FC width, classes, image size).
    pub fn with_width(
        seed: u64,
        c1: usize,
        c2: usize,
        fc: usize,
        classes: usize,
        hw: usize,
    ) -> Self {
        assert!(hw.is_multiple_of(4));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = Arena::new();
        let conv1 = Conv2d::new(&mut arena, &mut rng, 3, c1);
        let conv2 = Conv2d::new(&mut arena, &mut rng, c1, c2);
        let flat = c2 * (hw / 4) * (hw / 4);
        let fc1 = Linear::new(&mut arena, &mut rng, flat, fc);
        let fc2 = Linear::new(&mut arena, &mut rng, fc, classes);
        Self { arena, conv1, conv2, fc1, fc2, classes, hw }
    }

    /// Forward pass returning logits and (optionally) the caches for backward.
    fn forward_full(&self, batch: &ImageBatch) -> (Vec<f32>, [Vec<f32>; 5], [Vec<u32>; 2]) {
        let b = batch.batch;
        let hw = self.hw;
        let mut a1 = self.conv1.forward(&self.arena, &batch.pixels, b, hw, hw);
        relu_inplace(&mut a1);
        let (p1, arg1) = MaxPool2d::forward(&a1, b, self.conv1.out_ch, hw, hw);
        let mut a2 = self.conv2.forward(&self.arena, &p1, b, hw / 2, hw / 2);
        relu_inplace(&mut a2);
        let (p2, arg2) = MaxPool2d::forward(&a2, b, self.conv2.out_ch, hw / 2, hw / 2);
        let mut f1 = self.fc1.forward(&self.arena, &p2, b);
        relu_inplace(&mut f1);
        let logits = self.fc2.forward(&self.arena, &f1, b);
        (logits, [a1, p1, a2, p2, f1], [arg1, arg2])
    }
}

impl Model for VggLite {
    type Batch = ImageBatch;

    fn num_params(&self) -> usize {
        self.arena.len()
    }

    fn params(&self) -> &[f32] {
        self.arena.params()
    }

    fn params_mut(&mut self) -> &mut [f32] {
        self.arena.params_mut()
    }

    fn grads(&self) -> &[f32] {
        self.arena.grads()
    }

    fn zero_grads(&mut self) {
        self.arena.zero_grads();
    }

    fn forward_backward(&mut self, batch: &ImageBatch) -> TrainStats {
        let b = batch.batch;
        let hw = self.hw;
        let (logits, [a1, p1, a2, p2, f1], [arg1, arg2]) = self.forward_full(batch);

        let mut dlogits = vec![0.0f32; logits.len()];
        let (loss, correct) = softmax_xent(
            &logits,
            &batch.labels,
            &mut dlogits,
            b,
            self.classes,
            1.0 / b as f32, // mean loss gradient
        );

        let mut df1 = self.fc2.backward(&mut self.arena, &f1, &dlogits, b);
        relu_backward(&mut df1, &f1);
        let dp2 = self.fc1.backward(&mut self.arena, &p2, &df1, b);
        let mut da2 = MaxPool2d::backward(&dp2, &arg2, a2.len());
        relu_backward(&mut da2, &a2);
        let dp1 = self.conv2.backward(&mut self.arena, &p1, &da2, b, hw / 2, hw / 2);
        let mut da1 = MaxPool2d::backward(&dp1, &arg1, a1.len());
        relu_backward(&mut da1, &a1);
        self.conv1.backward(&mut self.arena, &batch.pixels, &da1, b, hw, hw);

        TrainStats { loss, correct, count: b }
    }

    fn evaluate(&self, batch: &ImageBatch) -> EvalStats {
        let b = batch.batch;
        let (logits, _, _) = self.forward_full(batch);
        let mut scratch = vec![0.0f32; logits.len()];
        let (loss, correct) =
            softmax_xent(&logits, &batch.labels, &mut scratch, b, self.classes, 1.0);
        EvalStats { loss, correct, count: b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticImages;

    #[test]
    fn param_count_is_vgglite_sized() {
        let m = VggLite::new(0);
        // conv1 448 + conv2 4640 + fc1 (512·128+128) + fc2 (128·10+10)
        assert_eq!(m.num_params(), 448 + 4640 + 512 * 128 + 128 + 1280 + 10);
    }

    #[test]
    fn same_seed_same_params() {
        let a = VggLite::new(42);
        let b = VggLite::new(42);
        assert_eq!(a.params(), b.params());
        let c = VggLite::new(43);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn gradients_are_finite_and_nonzero() {
        let mut m = VggLite::new(1);
        let data = SyntheticImages::new(2);
        let batch = data.train_batch(0, 0, 1, 4);
        m.zero_grads();
        let stats = m.forward_backward(&batch);
        assert!(stats.loss.is_finite() && stats.loss > 0.0);
        let nnz = m.grads().iter().filter(|g| **g != 0.0).count();
        assert!(nnz > m.num_params() / 2, "gradient mostly zero: {nnz}");
        assert!(m.grads().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn learns_the_synthetic_task() {
        // A few SGD steps must cut the training loss markedly (templates + noise is
        // nearly linearly separable).
        let mut m = VggLite::new(1);
        let data = SyntheticImages::new(2);
        let mut opt = crate::optim::Sgd::new(0.05, 0.9, m.num_params());
        let first = {
            let b = data.train_batch(0, 0, 1, 16);
            m.evaluate(&b).mean_loss()
        };
        for it in 0..30 {
            let b = data.train_batch(it, 0, 1, 16);
            m.zero_grads();
            m.forward_backward(&b);
            let g = m.grads().to_vec();
            opt.step(m.params_mut(), &g);
        }
        let test = data.test_batch(0, 32);
        let eval = m.evaluate(&test);
        assert!(eval.mean_loss() < first * 0.5, "no learning: {} -> {}", first, eval.mean_loss());
        assert!(eval.accuracy() > 0.5, "test acc {}", eval.accuracy());
    }
}
