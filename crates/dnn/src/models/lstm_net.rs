//! LstmNet: an LSTM sequence model (the AN4 speech-recognition stand-in).
//!
//! embedding(vocab→32) → LSTM(hid 64), unrolled with full BPTT → per-step
//! fc(64→vocab) predicting the next token. The held-out per-token argmax error
//! rate plays the role of the paper's Word Error Rate.

use crate::arena::Arena;
use crate::data::SeqBatch;
use crate::layers::{Embedding, Linear, LstmCell};
use crate::model::{EvalStats, Model, TrainStats};
use crate::ops::softmax_xent;
use rand::prelude::*;

/// The LSTM / AN4 stand-in (see module docs).
pub struct LstmNet {
    arena: Arena,
    embed: Embedding,
    cell: LstmCell,
    head: Linear,
    /// Vocabulary size.
    pub vocab: usize,
    /// LSTM hidden dimension.
    pub hid: usize,
}

impl LstmNet {
    /// Default width (≈27k parameters): vocab 24, embedding 32, hidden 64.
    pub fn new(seed: u64) -> Self {
        Self::with_width(seed, 24, 32, 64)
    }

    /// Fully parameterized constructor.
    pub fn with_width(seed: u64, vocab: usize, emb: usize, hid: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut arena = Arena::new();
        let embed = Embedding::new(&mut arena, &mut rng, vocab, emb);
        let cell = LstmCell::new(&mut arena, &mut rng, emb, hid);
        let head = Linear::new(&mut arena, &mut rng, hid, vocab);
        Self { arena, embed, cell, head, vocab, hid }
    }

    /// Unrolled forward; returns per-step logits `[seq][batch·vocab]` plus the
    /// caches needed for BPTT (embedded inputs and per-step LSTM states).
    #[allow(clippy::type_complexity)]
    fn forward_full(
        &self,
        batch: &SeqBatch,
    ) -> (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<crate::layers::LstmState>) {
        let (b, s) = (batch.batch, batch.seq);
        let mut h = vec![0.0f32; b * self.hid];
        let mut c = vec![0.0f32; b * self.hid];
        let mut logits_t = Vec::with_capacity(s);
        let mut embedded_t = Vec::with_capacity(s);
        let mut hidden_t = Vec::with_capacity(s);
        let mut caches = Vec::with_capacity(s);
        for t in 0..s {
            // Gather column t of the batch: tokens[b_i·seq + t].
            let toks: Vec<u32> = (0..b).map(|bi| batch.tokens[bi * s + t]).collect();
            let x = self.embed.forward(&self.arena, &toks);
            let (h2, c2, cache) = self.cell.step_forward(&self.arena, &x, &h, &c, b);
            h = h2;
            c = c2;
            logits_t.push(self.head.forward(&self.arena, &h, b));
            embedded_t.push(x);
            hidden_t.push(h.clone());
            caches.push(cache);
        }
        (logits_t, embedded_t, hidden_t, caches)
    }

    fn targets_at(&self, batch: &SeqBatch, t: usize) -> Vec<u32> {
        (0..batch.batch).map(|bi| batch.targets[bi * batch.seq + t]).collect()
    }
}

impl Model for LstmNet {
    type Batch = SeqBatch;

    fn num_params(&self) -> usize {
        self.arena.len()
    }

    fn params(&self) -> &[f32] {
        self.arena.params()
    }

    fn params_mut(&mut self) -> &mut [f32] {
        self.arena.params_mut()
    }

    fn grads(&self) -> &[f32] {
        self.arena.grads()
    }

    fn zero_grads(&mut self) {
        self.arena.zero_grads();
    }

    fn forward_backward(&mut self, batch: &SeqBatch) -> TrainStats {
        let (b, s) = (batch.batch, batch.seq);
        let (logits_t, embedded_t, hidden_t, caches) = self.forward_full(batch);

        let scale = 1.0 / (b * s) as f32; // mean over all scored positions
        let mut stats = TrainStats::default();
        let mut dh = vec![0.0f32; b * self.hid];
        let mut dc = vec![0.0f32; b * self.hid];
        // BPTT: walk timesteps in reverse, adding each step's head gradient to the
        // hidden-state gradient flowing back through the cell.
        for t in (0..s).rev() {
            let targets = self.targets_at(batch, t);
            let mut dlogits = vec![0.0f32; b * self.vocab];
            let (loss, correct) =
                softmax_xent(&logits_t[t], &targets, &mut dlogits, b, self.vocab, scale);
            stats.loss += loss;
            stats.correct += correct;
            stats.count += b;
            let dh_head = self.head.backward(&mut self.arena, &hidden_t[t], &dlogits, b);
            for (a, g) in dh.iter_mut().zip(&dh_head) {
                *a += g;
            }
            let (dx, dh_prev, dc_prev) =
                self.cell.step_backward(&mut self.arena, &caches[t], &dh, &dc, b);
            let toks: Vec<u32> = (0..b).map(|bi| batch.tokens[bi * s + t]).collect();
            self.embed.backward(&mut self.arena, &toks, &dx);
            let _ = embedded_t; // inputs only needed inside the cell cache
            dh = dh_prev;
            dc = dc_prev;
        }
        stats
    }

    #[allow(clippy::needless_range_loop)] // t indexes parallel per-step buffers
    fn evaluate(&self, batch: &SeqBatch) -> EvalStats {
        let (b, s) = (batch.batch, batch.seq);
        let (logits_t, _, _, _) = self.forward_full(batch);
        let mut stats = EvalStats::default();
        let mut scratch = vec![0.0f32; b * self.vocab];
        for t in 0..s {
            let targets = self.targets_at(batch, t);
            let (loss, correct) =
                softmax_xent(&logits_t[t], &targets, &mut scratch, b, self.vocab, 1.0);
            stats.loss += loss;
            stats.correct += correct;
            stats.count += b;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SyntheticSequences;

    #[test]
    fn param_count_is_lstmnet_sized() {
        let m = LstmNet::new(0);
        // embed 24·32 + lstm (96·256 + 256) + head (64·24 + 24)
        assert_eq!(m.num_params(), 24 * 32 + 96 * 256 + 256 + 64 * 24 + 24);
    }

    #[test]
    fn replicas_agree_and_gradients_flow() {
        let mut m = LstmNet::new(5);
        assert_eq!(m.params(), LstmNet::new(5).params());
        let data = SyntheticSequences::new(1);
        let b = data.train_batch(0, 0, 1, 4);
        m.zero_grads();
        let stats = m.forward_backward(&b);
        assert!(stats.loss.is_finite() && stats.count == 4 * data.seq);
        assert!(m.grads().iter().any(|&g| g != 0.0));
        assert!(m.grads().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn learns_the_markov_chain() {
        let mut m = LstmNet::new(2);
        let data = SyntheticSequences::new(3);
        let mut opt = crate::optim::Sgd::new(0.5, 0.9, m.num_params());
        let before = m.evaluate(&data.test_batch(0, 32)).error_rate();
        for it in 0..60 {
            let b = data.train_batch(it, 0, 1, 16);
            m.zero_grads();
            m.forward_backward(&b);
            let g = m.grads().to_vec();
            opt.step(m.params_mut(), &g);
        }
        let after = m.evaluate(&data.test_batch(0, 32)).error_rate();
        // Chance error ≈ 1 − 1/24 ≈ 0.96; the chain's best predictor sits much lower.
        assert!(after < before - 0.15, "WER proxy did not improve: {before} -> {after}");
        assert!(after < 0.60, "after={after}");
    }
}
