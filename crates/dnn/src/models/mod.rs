//! The three evaluation models, mirroring the paper's Table 2 domains.
//!
//! | Paper model | Dataset | Stand-in | Task |
//! |---|---|---|---|
//! | VGG-16 | Cifar-10 | [`VggLite`] | image classification |
//! | LSTM | AN4 | [`LstmNet`] | next-token prediction (WER proxy) |
//! | BERT | Wikipedia | [`BertLite`] | masked-token prediction |

mod bert;
mod lstm_net;
mod vgg;

pub use bert::BertLite;
pub use lstm_net::LstmNet;
pub use vgg::VggLite;
